module Region = Nvm.Region
module Seal = Nvm.Seal

(* On-media layout:

     0   magic
     8   version
     16  heap_start   (sealed)
     24  heap_end     (sealed)
     32  root table: [root_slots] x 8 bytes (sealed)
     ..  heap: sequence of blocks

   Block = 32-byte header followed by the payload:

     +0   payload size in bytes (multiple of 8, >= 8)  (sealed)
     +8   state: 0 free / 1 reserved / 2 allocated     (sealed)
     +16  pending-link address (0 = none)              (sealed)
     +24  pending-link value (opaque caller word, raw)

   Every metadata word except the link value is stored {e sealed}
   (Nvm.Seal: 48-bit value + 16-bit CRC tag), so a media fault in a
   header is detected at read time instead of steering the heap walk out
   of bounds. The link value is the caller's word, stored verbatim —
   callers linking into a sealed destination pass an already-sealed
   value. The heap is always walkable from [heap_start] by hopping
   [32 + size]; every mutation is ordered so that a crash at any point
   leaves a valid chain (see the comments at each persist). *)

let magic = 0x4E564D4845415031L (* "NVMHEAP1" *)
let version = 2L (* v2: sealed metadata words *)
let root_slots = 256
let header_size = 32
let min_payload = 8
let roots_off = 32
let heap_start_value = roots_off + (root_slots * 8)
let min_region_size = heap_start_value + header_size + min_payload

let st_free = 0
let st_reserved = 1
let st_allocated = 2

type offset = int

type corruption = { at : int; what : string }

exception Out_of_space of int
exception Heap_corrupt of corruption

let () =
  Printexc.register_printer (function
    | Heap_corrupt { at; what } ->
        Some (Printf.sprintf "Nvm_alloc.Heap_corrupt(%s at %d)" what at)
    | _ -> None)

let corrupt ~at what =
  Seal.count_failure ();
  raise (Heap_corrupt { at; what })

type recovery_stats = {
  scanned_blocks : int;
  reclaimed_reserved : int;
  redone_links : int;
  coalesced : int;
}

type t = {
  region : Region.t;
  heap_start : int;
  heap_end : int;
  (* volatile segregated free lists: bin k holds free blocks whose payload
     size s satisfies floor(log2 s) = k; keyed by header offset *)
  bins : (int, unit) Hashtbl.t array;
  mutable recovery : recovery_stats option;
}

let region t = t.region

let round8 n = (n + 7) land lnot 7

let log2_floor v =
  let rec go v acc = if v <= 1 then acc else go (v lsr 1) (acc + 1) in
  go v 0

let bin_count = 62
let bin_index size = min (log2_floor size) (bin_count - 1)

(* -- sealed word accessors -- *)

let read_sealed region ~what off =
  match Seal.unseal (Region.get_i64 region off) with
  | Some v -> v
  | None -> corrupt ~at:off what

let set_sealed region off v = Region.set_i64 region off (Seal.seal v)

(* -- header accessors (offsets are header offsets) -- *)

let get_size t h = read_sealed t.region ~what:"block size" h
let get_state t h = read_sealed t.region ~what:"block state" (h + 8)
let get_link_value t h = Region.get_i64 t.region (h + 24)

let bin_add t h = Hashtbl.replace t.bins.(bin_index (get_size t h)) h ()

(* recovery already holds every size in a volatile array — no reload *)
let bin_add_sized t h size = Hashtbl.replace t.bins.(bin_index size) h ()
let bin_remove t h = Hashtbl.remove t.bins.(bin_index (get_size t h)) h

let header_of_payload p = p - header_size
let payload_of_header h = h + header_size

(* -- formatting -- *)

let format region =
  if Region.size region < min_region_size then
    invalid_arg "Allocator.format: region too small";
  let heap_end = Region.size region land lnot 7 in
  (* null out the roots *)
  for slot = 0 to root_slots - 1 do
    set_sealed region (roots_off + (slot * 8)) 0
  done;
  (* single free block spanning the heap *)
  let h = heap_start_value in
  set_sealed region h (heap_end - h - header_size);
  set_sealed region (h + 8) st_free;
  set_sealed region (h + 16) 0;
  Region.set_i64 region (h + 24) 0L;
  set_sealed region 16 h;
  set_sealed region 24 heap_end;
  Region.set_i64 region 8 version;
  Region.persist region 0 (h + header_size);
  (* magic last: its durability is the commit point of formatting *)
  Region.set_i64 region 0 magic;
  Region.persist region 0 8;
  let t =
    {
      region;
      heap_start = h;
      heap_end;
      bins = Array.init bin_count (fun _ -> Hashtbl.create 16);
      recovery = None;
    }
  in
  bin_add t h;
  t

(* -- recovery -- *)

let check_block t h =
  if h + header_size > t.heap_end then
    raise (Heap_corrupt { at = h; what = "truncated block header" });
  let size = get_size t h in
  if size < min_payload || size land 7 <> 0 || h + header_size + size > t.heap_end
  then raise (Heap_corrupt { at = h; what = Printf.sprintf "invalid block size %d" size })

let open_existing region =
  if Region.size region < min_region_size then
    raise (Heap_corrupt { at = 0; what = "region smaller than a formatted heap" });
  if Region.get_i64 region 0 <> magic then
    raise (Heap_corrupt { at = 0; what = "bad magic" });
  if Region.get_i64 region 8 <> version then
    raise (Heap_corrupt { at = 8; what = "bad version" });
  let heap_start = read_sealed region ~what:"heap_start" 16 in
  let heap_end = read_sealed region ~what:"heap_end" 24 in
  if heap_start <> heap_start_value || heap_end > Region.size region then
    raise (Heap_corrupt { at = 16; what = "bad heap bounds" });
  let t =
    {
      region;
      heap_start;
      heap_end;
      bins = Array.init bin_count (fun _ -> Hashtbl.create 16);
      recovery = None;
    }
  in
  (* Recovery in three passes.
     A (serial): skeleton chain walk — the hop to the next header depends
       on each size, so this is inherently sequential; it reads exactly
       one size word per block (after [check_block]'s validation read).
       [check_block] bounds every hop and sizes are strictly positive, so
       the walk terminates; a belt-and-braces block-count cap catches any
       other way the chain could fail to advance.
     B (parallel): state/link classification over the recorded offsets —
       pure header reads landing in disjoint array slots, so chunks fan
       out across the pool. Serial when a tracer is attached
       (PROTOCOLS.md §10) and, either way, issues the same loads in the
       same per-block pattern whatever the lane count. Workers never
       raise and never touch the metrics registry: a word that fails to
       unseal is recorded as [-1] and reported from the serial pass C.
     C (serial): corruption reporting, repairs (reclaim reserved, redo
       links), free-run coalescing and bin population, in chain order —
       these write NVM, so they stay on the caller's domain. *)
  let max_blocks = ((heap_end - heap_start) / (header_size + min_payload)) + 1 in
  let offs = Util.Intbuf.create 1024 in
  let sizes = Util.Intbuf.create 1024 in
  let rec skeleton h n =
    if h < heap_end then begin
      if n > max_blocks then
        raise (Heap_corrupt { at = h; what = "non-terminating block chain" });
      check_block t h;
      let size = get_size t h in
      Util.Intbuf.push offs h;
      Util.Intbuf.push sizes size;
      skeleton (h + header_size + size) (n + 1)
    end
  in
  skeleton heap_start 0;
  let nb = Util.Intbuf.length offs in
  let offs = Util.Intbuf.to_array offs in
  let sizes = Util.Intbuf.to_array sizes in
  let states = Array.make nb 0 in
  let link_addrs = Array.make nb 0 in
  let link_vals = Array.make nb 0L in
  Par.parallel_for ~min_chunk:64 ~n:nb
    (fun ~lo ~hi ->
      for i = lo to hi - 1 do
        let h = offs.(i) in
        (match Seal.unseal (Region.get_i64 region (h + 8)) with
        | Some st -> states.(i) <- st
        | None -> states.(i) <- -1);
        if states.(i) = st_allocated then begin
          (match Seal.unseal (Region.get_i64 region (h + 16)) with
          | Some la -> link_addrs.(i) <- la
          | None -> link_addrs.(i) <- -1);
          if link_addrs.(i) > 0 then link_vals.(i) <- get_link_value t h
        end
      done);
  let reclaimed = ref 0
  and redone = ref 0
  and coalesced = ref 0 in
  (* the free run being grown, if any *)
  let run_head = ref (-1) in
  let run_size = ref 0 in
  let free_heads = Util.Intbuf.create 64 in
  let free_sizes = Util.Intbuf.create 64 in
  let close_run () =
    if !run_head >= 0 then begin
      Util.Intbuf.push free_heads !run_head;
      Util.Intbuf.push free_sizes !run_size;
      run_head := -1
    end
  in
  for i = 0 to nb - 1 do
    let h = offs.(i) in
    let size = sizes.(i) in
    if states.(i) < 0 then corrupt ~at:(h + 8) "block state";
    if states.(i) > st_allocated then
      raise (Heap_corrupt { at = h + 8; what = Printf.sprintf "bad state %d" states.(i) });
    let st =
      if states.(i) = st_reserved then begin
        (* crashed between alloc and activate: reclaim *)
        set_sealed region (h + 8) st_free;
        Region.persist region (h + 8) 8;
        incr reclaimed;
        st_free
      end
      else states.(i)
    in
    if st = st_allocated then begin
      if link_addrs.(i) < 0 then corrupt ~at:(h + 16) "link address";
      if link_addrs.(i) <> 0 then begin
        let la = link_addrs.(i) in
        if la land 7 <> 0 || la + 8 > Region.size region then
          raise (Heap_corrupt { at = h + 16; what = "link address out of range" });
        (* crashed between activation and publication: redo the link *)
        Region.set_i64 region la link_vals.(i);
        Region.persist region la 8;
        set_sealed region (h + 16) 0;
        Region.persist region (h + 16) 8;
        incr redone
      end;
      close_run ()
    end
    else if !run_head >= 0 then begin
      (* grow the previous free block over this one; the chain stays
         valid because the enlarged size is persisted atomically *)
      let merged = !run_size + header_size + size in
      set_sealed region !run_head merged;
      Region.persist region !run_head 8;
      incr coalesced;
      run_size := merged
    end
    else begin
      run_head := h;
      run_size := size
    end
  done;
  close_run ();
  for k = 0 to Util.Intbuf.length free_heads - 1 do
    bin_add_sized t (Util.Intbuf.get free_heads k) (Util.Intbuf.get free_sizes k)
  done;
  t.recovery <-
    Some
      {
        scanned_blocks = nb;
        reclaimed_reserved = !reclaimed;
        redone_links = !redone;
        coalesced = !coalesced;
      };
  t

let last_recovery t = t.recovery

(* -- allocation -- *)

let find_block t nbytes =
  let rec from_bin k =
    if k >= bin_count then raise (Out_of_space nbytes)
    else
      let found = ref None in
      (try
         Hashtbl.iter
           (fun h () ->
             if get_size t h >= nbytes then begin
               found := Some h;
               raise Exit
             end)
           t.bins.(k)
       with Exit -> ());
      match !found with Some h -> h | None -> from_bin (k + 1)
  in
  from_bin (bin_index nbytes)

let alloc t n =
  if n < 0 then invalid_arg "Allocator.alloc: negative size";
  let nbytes = max min_payload (round8 n) in
  let h = find_block t nbytes in
  bin_remove t h;
  let size = get_size t h in
  let r = t.region in
  if size >= nbytes + header_size + min_payload then begin
    (* Split.  The remainder header is persisted first: until h's shrunken
       header is durable, the remainder bytes are plain free-payload and the
       chain is untouched. *)
    let rh = payload_of_header h + nbytes in
    set_sealed r rh (size - nbytes - header_size);
    set_sealed r (rh + 8) st_free;
    set_sealed r (rh + 16) 0;
    Region.set_i64 r (rh + 24) 0L;
    Region.persist r rh header_size;
    set_sealed r h nbytes;
    set_sealed r (h + 8) st_reserved;
    set_sealed r (h + 16) 0;
    Region.set_i64 r (h + 24) 0L;
    Region.persist r h header_size;
    bin_add t rh
  end
  else begin
    set_sealed r (h + 8) st_reserved;
    set_sealed r (h + 16) 0;
    Region.set_i64 r (h + 24) 0L;
    Region.persist r h header_size
  end;
  payload_of_header h

let activate ?link t p =
  let h = header_of_payload p in
  let r = t.region in
  if get_state t h <> st_reserved then
    invalid_arg "Allocator.activate: block is not reserved";
  Region.with_label r "allocator.activate" @@ fun () ->
  (match link with
  | None -> ()
  | Some (addr, v) ->
      if addr land 7 <> 0 then
        invalid_arg "Allocator.activate: link address must be 8-byte aligned";
      (* link intent must be durable before the state flips: recovery only
         redoes links of ALLOCATED blocks *)
      set_sealed r (h + 16) addr;
      Region.set_i64 r (h + 24) v;
      Region.persist r (h + 16) 16;
      Region.expect_ordered r ~label:"allocator.activate.state"
        ~before:[ (h + 16, 16) ] ~after:(h + 8));
  set_sealed r (h + 8) st_allocated;
  Region.persist r (h + 8) 8;
  match link with
  | None -> ()
  | Some (addr, v) ->
      Region.expect_ordered r ~label:"allocator.activate.link"
        ~before:[ (h + 8, 8) ] ~after:addr;
      Region.set_i64 r addr v;
      Region.persist r addr 8;
      (* retire the intent so a later recovery cannot replay it onto
         memory that has been reused since *)
      set_sealed r (h + 16) 0;
      Region.persist r (h + 16) 8

let free t p =
  let h = header_of_payload p in
  let r = t.region in
  if get_state t h <> st_allocated && get_state t h <> st_reserved then
    invalid_arg "Allocator.free: double free";
  set_sealed r (h + 8) st_free;
  Region.persist r (h + 8) 8;
  (* forward coalesce: swallowing [next] only grows this block's size, so a
     crash before the persist leaves two valid free blocks *)
  let next = payload_of_header h + get_size t h in
  if next < t.heap_end && get_state t next = st_free then begin
    bin_remove t next;
    set_sealed r h (get_size t h + header_size + get_size t next);
    Region.persist r h 8
  end;
  bin_add t h

let usable_size t p = get_size t (header_of_payload p)

(* Defensive walk shared by sweep / blocks / heap_stats: every hop is
   bounds-checked and the chain length capped, so a corrupted size field
   surfaces as [Heap_corrupt] rather than an out-of-range region access
   or an endless loop. *)
let iter_headers t f =
  let max_blocks = ((t.heap_end - t.heap_start) / (header_size + min_payload)) + 1 in
  let rec go h n =
    if h < t.heap_end then begin
      if n > max_blocks then
        raise (Heap_corrupt { at = h; what = "non-terminating block chain" });
      check_block t h;
      let size = get_size t h in
      f h size;
      go (h + header_size + size) (n + 1)
    end
  in
  go t.heap_start 0

let sweep t ~live =
  (* collect first: freeing coalesces forward and rewrites sizes *)
  let victims = ref [] in
  iter_headers t (fun h size ->
      if get_state t h = st_allocated && not (live (payload_of_header h)) then
        victims := (payload_of_header h, size) :: !victims);
  let victims = List.rev !victims in
  List.iter (fun (p, _) -> free t p) victims;
  ( List.length victims,
    List.fold_left (fun acc (_, size) -> acc + size) 0 victims )

(* -- roots -- *)

let check_slot slot =
  if slot < 0 || slot >= root_slots then
    invalid_arg "Allocator: root slot out of range"

let set_root t slot off =
  check_slot slot;
  set_sealed t.region (roots_off + (slot * 8)) off;
  Region.persist t.region (roots_off + (slot * 8)) 8

let get_root t slot =
  check_slot slot;
  read_sealed t.region ~what:"root slot" (roots_off + (slot * 8))

(* -- introspection -- *)

type block_info = {
  offset : offset;
  size : int;
  state : [ `Free | `Reserved | `Allocated ];
}

let blocks t =
  let acc = ref [] in
  iter_headers t (fun h size ->
      let state =
        match get_state t h with
        | s when s = st_free -> `Free
        | s when s = st_reserved -> `Reserved
        | s when s = st_allocated -> `Allocated
        | s -> raise (Heap_corrupt { at = h + 8; what = Printf.sprintf "bad state %d" s })
      in
      acc := { offset = payload_of_header h; size; state } :: !acc);
  List.rev !acc

type heap_stats = {
  heap_bytes : int;
  live_bytes : int;
  free_bytes : int;
  live_blocks : int;
  free_blocks : int;
}

let heap_stats t =
  let live_bytes = ref 0
  and free_bytes = ref 0
  and live_blocks = ref 0
  and free_blocks = ref 0 in
  List.iter
    (fun b ->
      match b.state with
      | `Allocated | `Reserved ->
          live_bytes := !live_bytes + b.size;
          incr live_blocks
      | `Free ->
          free_bytes := !free_bytes + b.size;
          incr free_blocks)
    (blocks t);
  {
    heap_bytes = t.heap_end - t.heap_start;
    live_bytes = !live_bytes;
    free_bytes = !free_bytes;
    live_blocks = !live_blocks;
    free_blocks = !free_blocks;
  }
