#!/usr/bin/env bash
# Statically enforce the concurrency-aware sanitizer contract
# (docs/PROTOCOLS.md §10):
#
#   1. No Par call site may serialize traced runs. The sanitizer buffers
#      per-lane traces and merges them at every join, so
#      `~force_serial:(Region.traced ...)` would silently put sanitized
#      runs back on the serial path the happens-before checker exists to
#      retire.
#
#   2. Every module that stores into a Region must label at least one
#      call site (Region.with_label / push_label) so sanitizer findings
#      stay attributable to a protocol step, not just an offset.
set -u
root="$(cd "$(dirname "$0")/.." && pwd)"
fail=0

hits=$(grep -rn --include='*.ml' -E 'force_serial:\(?(Nvm\.)?Region\.traced' \
  "$root/lib" "$root/bin" "$root/bench" 2>/dev/null)
if [ -n "$hits" ]; then
  echo "lint: Par call sites must not force traced runs serial (PROTOCOLS.md §10):" >&2
  echo "$hits" >&2
  fail=1
fi

for f in $(grep -rl --include='*.ml' \
  -E 'Region\.(set_i64|set_int|set_u8|write_bytes|write_string)' \
  "$root/lib" 2>/dev/null | grep -v '/lib/nvm/'); do
  if ! grep -qE '(with_label|push_label)' "$f"; then
    echo "lint: $f stores into a Region but never labels a call site (Region.with_label)" >&2
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "lint_force_serial: OK"
fi
exit $fail
