(* Tests for the workload generators: determinism, schema population,
   invariants, and recovery interplay. *)

module E = Core.Engine
module Region = Nvm.Region
module Value = Storage.Value
module Prng = Util.Prng
module Tpcc = Workload.Tpcc_lite
module Ycsb = Workload.Ycsb

let nvm_engine ?(size = 32 * 1024 * 1024) () =
  E.create (E.default_config ~size E.Nvm)

(* -------- tpcc-lite -------- *)

let small_tpcc e = Tpcc.setup e ~warehouses:2 ~districts_per_wh:3 ~customers_per_district:5

let test_tpcc_setup_populates () =
  let e = nvm_engine () in
  let _sess = small_tpcc e in
  Alcotest.(check (list string)) "tables" Tpcc.table_names (E.table_names e);
  E.with_txn e (fun txn ->
      Alcotest.(check int) "warehouses" 2 (E.count e txn "warehouse");
      Alcotest.(check int) "districts" 6 (E.count e txn "district");
      Alcotest.(check int) "customers" 30 (E.count e txn "customer");
      Alcotest.(check int) "no orders yet" 0 (E.count e txn "orders"))

let test_tpcc_run_commits () =
  let e = nvm_engine () in
  let sess = small_tpcc e in
  let st = Tpcc.run sess (Prng.create 1L) ~ops:100 () in
  Alcotest.(check int) "all accounted" 100
    (st.Tpcc.committed + st.Tpcc.aborted);
  Alcotest.(check bool) "mostly commits" true (st.Tpcc.committed > 80);
  Alcotest.(check int) "orders = committed new_orders" st.Tpcc.new_orders
    (Tpcc.total_orders sess);
  List.iter
    (fun (name, ok) -> Alcotest.(check bool) name true ok)
    (Tpcc.consistency_check sess)

let test_tpcc_deterministic () =
  let run seed =
    let e = nvm_engine () in
    let sess = small_tpcc e in
    let st = Tpcc.run sess (Prng.create seed) ~ops:80 () in
    (st.Tpcc.committed, st.Tpcc.new_orders, Tpcc.total_orders sess)
  in
  Alcotest.(check bool) "same seed, same outcome" true (run 7L = run 7L)

let test_tpcc_revenue_matches_orders () =
  let e = nvm_engine () in
  let sess = small_tpcc e in
  ignore (Tpcc.run sess (Prng.create 3L) ~ops:120 ());
  (* district revenues sum to the total of all order amounts *)
  let rev = ref 0 in
  for w = 1 to 2 do
    for d = 1 to 3 do
      rev := !rev + Tpcc.district_revenue sess ~w_id:w ~d_id:d
    done
  done;
  let total =
    E.with_txn e (fun txn -> E.sum_int e txn "orders" ~col:"o_amount")
  in
  Alcotest.(check int) "revenue accounted" total !rev

let test_tpcc_attach_continues_order_ids () =
  let e = nvm_engine () in
  let sess = small_tpcc e in
  ignore (Tpcc.run sess (Prng.create 4L) ~ops:60 ());
  let n = Tpcc.total_orders sess in
  let e2, _ = E.recover (E.crash e Region.Drop_unfenced) in
  let sess2 = Tpcc.attach e2 ~warehouses:2 ~districts_per_wh:3 ~customers_per_district:5 in
  ignore (Tpcc.run sess2 (Prng.create 5L) ~ops:60 ());
  (* order ids must not collide: count equals sum of committed new orders *)
  let ids = Hashtbl.create 64 in
  E.with_txn e2 (fun txn ->
      E.scan e2 txn "orders" (fun _ values ->
          match values.(0) with
          | Value.Int o -> Hashtbl.replace ids o ()
          | _ -> ()));
  Alcotest.(check int) "distinct order ids" (Tpcc.total_orders sess2)
    (Hashtbl.length ids);
  Alcotest.(check bool) "new orders appended" true (Tpcc.total_orders sess2 >= n)

(* -------- ycsb -------- *)

let ycsb_cfg =
  { Ycsb.default_config with rows = 500; field_length = 16; fields = 2 }

let test_ycsb_setup () =
  let e = nvm_engine () in
  let t = Ycsb.setup e (Prng.create 1L) ycsb_cfg in
  Alcotest.(check int) "rows loaded" 500 (Ycsb.row_count t)

let test_ycsb_run_mix () =
  let e = nvm_engine () in
  let t = Ycsb.setup e (Prng.create 1L) ycsb_cfg in
  let st = Ycsb.run t (Prng.create 2L) ~ops:300 in
  Alcotest.(check int) "ops accounted" 300
    (st.Ycsb.reads + st.Ycsb.updates + st.Ycsb.inserts + st.Ycsb.aborted);
  Alcotest.(check bool) "reads happened" true (st.Ycsb.reads > 0);
  Alcotest.(check bool) "updates happened" true (st.Ycsb.updates > 0);
  Alcotest.(check int) "rows grew by inserts" (500 + st.Ycsb.inserts)
    (Ycsb.row_count t)

let test_ycsb_checksum_stable_across_recovery () =
  let e = nvm_engine () in
  let t = Ycsb.setup e (Prng.create 1L) ycsb_cfg in
  ignore (Ycsb.run t (Prng.create 2L) ~ops:200);
  let sum = Ycsb.checksum t in
  let e2, _ = E.recover (E.crash e Region.Drop_unfenced) in
  let t2 = Ycsb.attach e2 ycsb_cfg in
  Alcotest.(check int) "checksum survives crash" sum (Ycsb.checksum t2)

let test_ycsb_zipf_skews_updates () =
  (* with high skew, a hot set of keys receives most versions; after a
     merge the table compacts (dead versions existed) *)
  let e = nvm_engine () in
  let t = Ycsb.setup e (Prng.create 1L) { ycsb_cfg with zipf_theta = 0.99 } in
  ignore (Ycsb.run t (Prng.create 2L) ~ops:400);
  let stats = E.merge e Ycsb.table_name in
  Alcotest.(check bool) "dead versions compacted" true
    (stats.Storage.Merge.rows_out < stats.Storage.Merge.rows_in)

let test_ycsb_deterministic () =
  let run () =
    let e = nvm_engine () in
    let t = Ycsb.setup e (Prng.create 9L) ycsb_cfg in
    ignore (Ycsb.run t (Prng.create 10L) ~ops:150);
    Ycsb.checksum t
  in
  Alcotest.(check int) "deterministic" (run ()) (run ())

let () =
  Alcotest.run "workload"
    [
      ( "tpcc-lite",
        [
          Alcotest.test_case "setup populates" `Quick test_tpcc_setup_populates;
          Alcotest.test_case "run commits" `Quick test_tpcc_run_commits;
          Alcotest.test_case "deterministic" `Quick test_tpcc_deterministic;
          Alcotest.test_case "revenue accounting" `Quick
            test_tpcc_revenue_matches_orders;
          Alcotest.test_case "attach continues ids" `Quick
            test_tpcc_attach_continues_order_ids;
        ] );
      ( "ycsb",
        [
          Alcotest.test_case "setup" `Quick test_ycsb_setup;
          Alcotest.test_case "run mix" `Quick test_ycsb_run_mix;
          Alcotest.test_case "checksum across recovery" `Quick
            test_ycsb_checksum_stable_across_recovery;
          Alcotest.test_case "zipf skews updates" `Quick test_ycsb_zipf_skews_updates;
          Alcotest.test_case "deterministic" `Quick test_ycsb_deterministic;
        ] );
    ]
