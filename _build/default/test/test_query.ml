(* Tests for the query layer: predicate semantics, dictionary-space
   compilation on both partitions, filtered scans, aggregation — with a
   qcheck property checking the compiled path against naive decoded
   evaluation across merge states. *)

module E = Core.Engine
module Value = Storage.Value
module Schema = Storage.Schema
module Predicate = Query.Predicate
module Aggregate = Query.Aggregate
module Prng = Util.Prng

let nvm_engine ?(size = 16 * 1024 * 1024) () =
  E.create (E.default_config ~size E.Nvm)

let schema =
  [|
    Schema.column ~indexed:true "id" Value.Int_t;
    Schema.column "city" Value.Text_t;
    Schema.column "amount" Value.Int_t;
    Schema.column "score" Value.Float_t;
  |]

let mk_engine rows =
  let e = nvm_engine () in
  E.create_table e ~name:"t" schema;
  E.with_txn e (fun txn ->
      List.iteri
        (fun i (city, amount, score) ->
          ignore
            (E.insert e txn "t"
               [| Value.Int i; Value.Text city; Value.Int amount; Value.Float score |]))
        rows);
  e

let sample =
  [
    ("berlin", 10, 1.5);
    ("amsterdam", 20, 2.5);
    ("chicago", 30, 3.5);
    ("berlin", 40, 4.5);
    ("delhi", 50, 0.5);
    ("amsterdam", 60, 2.5);
  ]

let ids e filters =
  E.with_txn e (fun txn -> List.map fst (E.where e txn "t" filters))

(* -------- predicate semantics -------- *)

let test_eval () =
  let open Predicate in
  Alcotest.(check bool) "eq" true (eval (Cmp (Eq, Value.Int 5)) (Value.Int 5));
  Alcotest.(check bool) "ne" true (eval (Cmp (Ne, Value.Int 5)) (Value.Int 6));
  Alcotest.(check bool) "lt" true (eval (Cmp (Lt, Value.Int 5)) (Value.Int 4));
  Alcotest.(check bool) "le edge" true (eval (Cmp (Le, Value.Int 5)) (Value.Int 5));
  Alcotest.(check bool) "gt" false (eval (Cmp (Gt, Value.Int 5)) (Value.Int 5));
  Alcotest.(check bool) "ge" true (eval (Cmp (Ge, Value.Int 5)) (Value.Int 5));
  Alcotest.(check bool) "between inclusive" true
    (eval (Between (Value.Int 1, Value.Int 3)) (Value.Int 3));
  Alcotest.(check bool) "in" true
    (eval (In [ Value.Text "a"; Value.Text "b" ]) (Value.Text "b"));
  Alcotest.(check bool) "any" true (eval Any (Value.Float 0.0))

(* -------- scans on delta, main, and mixed -------- *)

let check_filters e () =
  Alcotest.(check (list int)) "eq text" [ 0; 3 ]
    (ids e [ ("city", Predicate.Cmp (Eq, Value.Text "berlin")) ]);
  Alcotest.(check (list int)) "range int" [ 1; 2; 3 ]
    (ids e [ ("amount", Predicate.Between (Value.Int 20, Value.Int 40)) ]);
  Alcotest.(check (list int)) "gt float" [ 2; 3 ]
    (ids e [ ("score", Predicate.Cmp (Gt, Value.Float 2.5)) ]);
  Alcotest.(check (list int)) "ne" [ 1; 2; 4; 5 ]
    (ids e [ ("city", Predicate.Cmp (Ne, Value.Text "berlin")) ]);
  Alcotest.(check (list int)) "in set" [ 1; 4; 5 ]
    (ids e [ ("city", Predicate.In [ Value.Text "amsterdam"; Value.Text "delhi" ]) ]);
  Alcotest.(check (list int)) "conjunction" [ 3 ]
    (ids e
       [
         ("city", Predicate.Cmp (Eq, Value.Text "berlin"));
         ("amount", Predicate.Cmp (Gt, Value.Int 10));
       ]);
  Alcotest.(check (list int)) "empty result" []
    (ids e [ ("city", Predicate.Cmp (Eq, Value.Text "nowhere")) ]);
  Alcotest.(check (list int)) "any" [ 0; 1; 2; 3; 4; 5 ] (ids e [ ("id", Predicate.Any) ])

let test_scan_delta () = check_filters (mk_engine sample) ()

let test_scan_main () =
  let e = mk_engine sample in
  ignore (E.merge e "t");
  check_filters e ()

let test_scan_mixed () =
  let e = nvm_engine () in
  E.create_table e ~name:"t" schema;
  let insert i (city, amount, score) =
    E.with_txn e (fun txn ->
        ignore
          (E.insert e txn "t"
             [| Value.Int i; Value.Text city; Value.Int amount; Value.Float score |]))
  in
  List.iteri (fun i r -> if i < 3 then insert i r) sample;
  ignore (E.merge e "t");
  List.iteri (fun i r -> if i >= 3 then insert i r) sample;
  check_filters e ()

let test_scan_respects_visibility () =
  let e = mk_engine sample in
  let t1 = E.begin_txn e in
  ignore
    (E.insert e t1 "t"
       [| Value.Int 99; Value.Text "berlin"; Value.Int 1; Value.Float 0.0 |]);
  (* other transactions do not see the staged berlin row *)
  E.with_txn e (fun txn ->
      Alcotest.(check int) "count excludes staged" 2
        (E.count_where e txn "t" [ ("city", Predicate.Cmp (Eq, Value.Text "berlin")) ]));
  (* the writer sees it *)
  Alcotest.(check int) "own write included" 3
    (E.count_where e t1 "t" [ ("city", Predicate.Cmp (Eq, Value.Text "berlin")) ]);
  E.abort e t1

let test_count_where () =
  let e = mk_engine sample in
  E.with_txn e (fun txn ->
      Alcotest.(check int) "count" 3
        (E.count_where e txn "t" [ ("amount", Predicate.Cmp (Ge, Value.Int 40)) ]))

(* -------- aggregation -------- *)

let test_aggregate_ungrouped () =
  let e = mk_engine sample in
  E.with_txn e (fun txn ->
      let r =
        E.aggregate e txn "t"
          ~specs:[ Aggregate.Count; Aggregate.Sum "amount"; Aggregate.Avg "amount";
                   Aggregate.Min "city"; Aggregate.Max "score" ]
          ()
      in
      match r.Aggregate.groups with
      | [ (None, cells) ] ->
          Alcotest.(check string) "count" "6" (Aggregate.cell_to_string cells.(0));
          Alcotest.(check string) "sum" "210" (Aggregate.cell_to_string cells.(1));
          Alcotest.(check string) "avg" "35" (Aggregate.cell_to_string cells.(2));
          Alcotest.(check string) "min city" "amsterdam"
            (Aggregate.cell_to_string cells.(3));
          Alcotest.(check string) "max score" "4.5"
            (Aggregate.cell_to_string cells.(4))
      | _ -> Alcotest.fail "expected one group")

let test_aggregate_grouped () =
  let e = mk_engine sample in
  E.with_txn e (fun txn ->
      let r =
        E.aggregate e txn "t" ~group_by:"city"
          ~specs:[ Aggregate.Count; Aggregate.Sum "amount" ] ()
      in
      let rows =
        List.map
          (fun (k, cells) ->
            ( (match k with Some v -> Value.to_string v | None -> "?"),
              Aggregate.cell_to_string cells.(0),
              Aggregate.cell_to_string cells.(1) ))
          r.Aggregate.groups
      in
      Alcotest.(check (list (triple string string string)))
        "grouped sums (sorted by key)"
        [
          ("amsterdam", "2", "80");
          ("berlin", "2", "50");
          ("chicago", "1", "30");
          ("delhi", "1", "50");
        ]
        rows)

let test_aggregate_filtered () =
  let e = mk_engine sample in
  E.with_txn e (fun txn ->
      let r =
        E.aggregate e txn "t" ~specs:[ Aggregate.Sum "amount" ]
          ~filters:[ ("city", Predicate.Cmp (Eq, Value.Text "amsterdam")) ]
          ()
      in
      match r.Aggregate.groups with
      | [ (None, [| c |]) ] ->
          Alcotest.(check string) "filtered sum" "80" (Aggregate.cell_to_string c)
      | _ -> Alcotest.fail "expected one group")

let test_aggregate_empty_table () =
  let e = nvm_engine () in
  E.create_table e ~name:"t" schema;
  E.with_txn e (fun txn ->
      let r = E.aggregate e txn "t" ~specs:[ Aggregate.Count; Aggregate.Min "id" ] () in
      match r.Aggregate.groups with
      | [ (None, cells) ] ->
          Alcotest.(check string) "count 0" "0" (Aggregate.cell_to_string cells.(0));
          Alcotest.(check string) "min null" "null" (Aggregate.cell_to_string cells.(1))
      | _ -> Alcotest.fail "expected one group")

let test_aggregate_non_numeric_sum_rejected () =
  let e = mk_engine sample in
  E.with_txn e (fun txn ->
      try
        ignore (E.aggregate e txn "t" ~specs:[ Aggregate.Sum "city" ] ());
        Alcotest.fail "expected Invalid_argument"
      with Invalid_argument _ -> ())

(* -------- property: compiled scans = naive evaluation -------- *)

let gen_pred =
  QCheck.Gen.(
    let value = map (fun i -> Value.Int i) (int_range 0 30) in
    frequency
      [
        ( 6,
          map2
            (fun op v -> Predicate.Cmp (op, v))
            (oneofl Predicate.[ Eq; Ne; Lt; Le; Gt; Ge ])
            value );
        (2, map2 (fun a b -> Predicate.Between (Value.Int (min a b), Value.Int (max a b)))
             (int_range 0 30) (int_range 0 30));
        (1, map (fun vs -> Predicate.In (List.map (fun v -> Value.Int v) vs))
             (list_size (int_range 0 4) (int_range 0 30)));
      ])

let print_pred p =
  let v = Value.to_string in
  match p with
  | Predicate.Any -> "any"
  | Predicate.Cmp (op, x) ->
      Printf.sprintf "%s %s"
        (match op with
        | Predicate.Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<="
        | Gt -> ">" | Ge -> ">=")
        (v x)
  | Predicate.Between (a, b) -> Printf.sprintf "between %s %s" (v a) (v b)
  | Predicate.In vs -> "in [" ^ String.concat ";" (List.map v vs) ^ "]"

let prop_compiled_equals_naive =
  QCheck.Test.make ~name:"compiled scan = naive evaluation (all partitions)"
    ~count:150
    QCheck.(
      make
        ~print:(fun (rows, merge_at, p) ->
          Printf.sprintf "rows=%s merge_at=%d pred=(%s)"
            (String.concat "," (List.map string_of_int rows))
            merge_at (print_pred p))
        Gen.(
          triple
            (list_size (int_range 0 40) (int_range 0 30))
            (int_range 0 40) gen_pred))
    (fun (amounts, merge_at, pred) ->
      let e = nvm_engine () in
      E.create_table e ~name:"t" schema;
      List.iteri
        (fun i a ->
          if i = merge_at then ignore (E.merge e "t");
          E.with_txn e (fun txn ->
              ignore
                (E.insert e txn "t"
                   [| Value.Int i; Value.Text (string_of_int (a mod 5));
                      Value.Int a; Value.Float (float_of_int a) |])))
        amounts;
      let compiled =
        E.with_txn e (fun txn ->
            List.map fst (E.where e txn "t" [ ("amount", pred) ]))
      in
      let naive =
        List.filteri (fun _ a -> Predicate.eval pred (Value.Int a)) amounts
        |> List.length
      in
      List.length compiled = naive)

let prop_text_predicates_equal_naive =
  (* exercises the string dict_key (hash) path, including collisions-by-
     construction being verified semantically *)
  QCheck.Test.make ~name:"text predicates: compiled = naive" ~count:100
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 30) (int_bound 6))
        (pair (int_bound 6) (oneofl [ `Eq; `Ne; `In ])))
    (fun (rows, (target, op)) ->
      let word i = String.make 1 (Char.chr (Char.code 'a' + i)) in
      let e = nvm_engine () in
      E.create_table e ~name:"t" schema;
      List.iteri
        (fun i w ->
          E.with_txn e (fun txn ->
              ignore
                (E.insert e txn "t"
                   [| Value.Int i; Value.Text (word w); Value.Int 0;
                      Value.Float 0.0 |])))
        rows;
      let target_v = Value.Text (word target) in
      let pred =
        match op with
        | `Eq -> Predicate.Cmp (Predicate.Eq, target_v)
        | `Ne -> Predicate.Cmp (Predicate.Ne, target_v)
        | `In -> Predicate.In [ target_v; Value.Text (word ((target + 1) mod 7)) ]
      in
      let compiled =
        E.with_txn e (fun txn -> E.count_where e txn "t" [ ("city", pred) ])
      in
      let naive =
        List.length
          (List.filter (fun w -> Predicate.eval pred (Value.Text (word w))) rows)
      in
      compiled = naive)

let () =
  Alcotest.run "query"
    [
      ("predicate", [ Alcotest.test_case "eval" `Quick test_eval ]);
      ( "scan",
        [
          Alcotest.test_case "delta partition" `Quick test_scan_delta;
          Alcotest.test_case "main partition" `Quick test_scan_main;
          Alcotest.test_case "mixed partitions" `Quick test_scan_mixed;
          Alcotest.test_case "visibility" `Quick test_scan_respects_visibility;
          Alcotest.test_case "count_where" `Quick test_count_where;
          QCheck_alcotest.to_alcotest prop_compiled_equals_naive;
          QCheck_alcotest.to_alcotest prop_text_predicates_equal_naive;
        ] );
      ( "aggregate",
        [
          Alcotest.test_case "ungrouped" `Quick test_aggregate_ungrouped;
          Alcotest.test_case "grouped" `Quick test_aggregate_grouped;
          Alcotest.test_case "filtered" `Quick test_aggregate_filtered;
          Alcotest.test_case "empty table" `Quick test_aggregate_empty_table;
          Alcotest.test_case "non-numeric sum rejected" `Quick
            test_aggregate_non_numeric_sum_rejected;
        ] );
    ]
