(* Tests for the column-store storage layer: values, schemas, tables
   (dictionaries, attribute vectors, MVCC vectors), catalog, and merge. *)

module Region = Nvm.Region
module A = Nvm_alloc.Allocator
module Value = Storage.Value
module Schema = Storage.Schema
module Table = Storage.Table
module Catalog = Storage.Catalog
module Cid = Storage.Cid

let fresh ?(size = 8 * 1024 * 1024) () =
  A.format (Region.create { Region.default_config with size })

let reopen alloc = A.open_existing (A.region alloc)

let value_t = Alcotest.testable (Fmt.of_to_string Value.to_string) Value.equal

(* -------- Value -------- *)

let test_value_compare () =
  Alcotest.(check bool) "int order" true (Value.compare (Int 1) (Int 2) < 0);
  Alcotest.(check bool) "float order" true
    (Value.compare (Float 1.5) (Float 1.6) < 0);
  Alcotest.(check bool) "text order" true
    (Value.compare (Text "abc") (Text "abd") < 0);
  Alcotest.(check bool) "equal ints" true (Value.equal (Int 5) (Int 5));
  Alcotest.(check bool) "negative ints" true
    (Value.compare (Int (-10)) (Int 3) < 0)

let test_value_encode_roundtrip () =
  let a = fresh () in
  let cases =
    [ Value.Int 42; Value.Int (-17); Value.Int 0; Value.Float 3.25;
      Value.Float (-0.5); Value.Text ""; Value.Text "hello world" ]
  in
  List.iter
    (fun v ->
      let w = Value.encode a v in
      Alcotest.check value_t "roundtrip" v (Value.decode a (Value.ty_of v) w))
    cases

let test_value_compare_encoded () =
  let a = fresh () in
  let w1 = Value.encode a (Value.Text "apple") in
  let w2 = Value.encode a (Value.Text "banana") in
  Alcotest.(check bool) "encoded text compare" true
    (Value.compare_encoded a Value.Text_t w1 w2 < 0);
  let i1 = Value.encode a (Value.Int (-5)) and i2 = Value.encode a (Value.Int 5) in
  Alcotest.(check bool) "encoded int compare" true
    (Value.compare_encoded a Value.Int_t i1 i2 < 0)

let test_value_dict_key () =
  Alcotest.(check bool) "equal strings share key" true
    (Value.dict_key (Text "same") = Value.dict_key (Text "same"));
  Alcotest.(check bool) "int key is identity" true
    (Value.dict_key (Int 7) = 7L);
  Alcotest.(check bool) "ty names roundtrip" true
    (List.for_all
       (fun ty -> Value.ty_of_string (Value.ty_to_string ty) = ty)
       [ Value.Int_t; Value.Float_t; Value.Text_t ])

(* -------- Schema -------- *)

let test_schema () =
  let s =
    [| Schema.column ~indexed:true "id" Value.Int_t;
       Schema.column "name" Value.Text_t |]
  in
  Alcotest.(check int) "arity" 2 (Schema.arity s);
  Alcotest.(check int) "find" 1 (Schema.find_column s "name");
  Alcotest.check_raises "missing column" Not_found (fun () ->
      ignore (Schema.find_column s "nope"));
  Schema.validate_row s [| Value.Int 1; Value.Text "x" |];
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Schema.validate_row: arity 1, expected 2") (fun () ->
      Schema.validate_row s [| Value.Int 1 |]);
  Alcotest.check_raises "type mismatch"
    (Invalid_argument "Schema.validate_row: column name expects text, got int")
    (fun () -> Schema.validate_row s [| Value.Int 1; Value.Int 2 |])

(* -------- Table -------- *)

let simple_schema =
  [| Schema.column ~indexed:true "k" Value.Int_t;
     Schema.column "s" Value.Text_t;
     Schema.column "n" Value.Int_t |]

let mk_table ?(name = "t") a = Table.create a ~name simple_schema

let row k s n = [| Value.Int k; Value.Text s; Value.Int n |]

let test_table_append_get () =
  let a = fresh () in
  let t = mk_table a in
  let r0 = Table.append_row t (row 1 "one" 10) in
  let r1 = Table.append_row t (row 2 "two" 20) in
  Alcotest.(check int) "rows" 2 (Table.row_count t);
  Alcotest.(check int) "r0" 0 r0;
  Alcotest.(check int) "r1" 1 r1;
  Alcotest.check value_t "get k" (Value.Int 1) (Table.get t 0 0);
  Alcotest.check value_t "get s" (Value.Text "two") (Table.get t 1 1);
  Alcotest.(check (array value_t)) "get_row" (row 1 "one" 10) (Table.get_row t 0)

let test_table_new_rows_uncommitted () =
  let a = fresh () in
  let t = mk_table a in
  let r = Table.append_row t (row 1 "x" 0) in
  Alcotest.(check int64) "begin inf" Cid.infinity (Table.begin_cid t r);
  Alcotest.(check int64) "end inf" Cid.infinity (Table.end_cid t r)

let test_table_dictionary_dedup () =
  let a = fresh () in
  let t = mk_table a in
  for i = 0 to 99 do
    ignore (Table.append_row t (row (i mod 5) "shared" i))
  done;
  Alcotest.(check int) "k dict has 5 entries" 5 (Table.delta_dictionary_size t 0);
  Alcotest.(check int) "s dict has 1 entry" 1 (Table.delta_dictionary_size t 1);
  Alcotest.(check int) "n dict has 100 entries" 100 (Table.delta_dictionary_size t 2)

let test_table_rows_with_value () =
  let a = fresh () in
  let t = mk_table a in
  for i = 0 to 19 do
    ignore (Table.append_row t (row (i mod 4) (Printf.sprintf "s%d" (i mod 3)) i))
  done;
  (* indexed column *)
  Alcotest.(check (list int)) "k=2 rows" [ 2; 6; 10; 14; 18 ]
    (Table.rows_with_value t 0 (Value.Int 2));
  (* non-indexed text column: delta scan *)
  Alcotest.(check (list int)) "s=s1 rows" [ 1; 4; 7; 10; 13; 16; 19 ]
    (Table.rows_with_value t 1 (Value.Text "s1"));
  Alcotest.(check (list int)) "missing value" []
    (Table.rows_with_value t 0 (Value.Int 99))

let test_table_publish_crash_roundtrip () =
  let a = fresh () in
  let t = mk_table a in
  A.set_root a 1 (Table.handle t);
  ignore (Table.append_row t (row 1 "alpha" 100));
  ignore (Table.append_row t (row 2 "beta" 200));
  Table.set_begin_cid t 0 1L;
  Table.set_begin_cid t 1 1L;
  Table.publish t;
  (* a third row, never published *)
  ignore (Table.append_row t (row 3 "gamma" 300));
  Region.crash (A.region a) Region.Drop_unfenced;
  let a2 = reopen a in
  let t2 = Table.attach a2 (A.get_root a2 1) in
  Alcotest.(check int) "published rows survive" 2 (Table.row_count t2);
  Alcotest.(check (array value_t)) "row 0" (row 1 "alpha" 100) (Table.get_row t2 0);
  Alcotest.(check (array value_t)) "row 1" (row 2 "beta" 200) (Table.get_row t2 1);
  Alcotest.(check int64) "begin durable" 1L (Table.begin_cid t2 0)

let test_table_rollback_uncommitted () =
  let a = fresh () in
  let t = mk_table a in
  A.set_root a 1 (Table.handle t);
  (* committed at cid 1 *)
  ignore (Table.append_row t (row 1 "a" 0));
  Table.set_begin_cid t 0 1L;
  (* "committed" at cid 2, but 2 never became the durable last-cid *)
  ignore (Table.append_row t (row 2 "b" 0));
  Table.set_begin_cid t 1 2L;
  (* invalidation at cid 2, also beyond the horizon *)
  Table.set_end_cid t 0 2L;
  Table.publish t;
  Region.crash (A.region a) Region.Drop_unfenced;
  let a2 = reopen a in
  let t2 = Table.attach a2 (A.get_root a2 1) in
  let touched = Table.rollback_uncommitted t2 ~last_cid:1L in
  Alcotest.(check int) "two rollbacks" 2 touched;
  Alcotest.(check int64) "row 0 begin keeps cid 1" 1L (Table.begin_cid t2 0);
  Alcotest.(check int64) "row 0 end reset" Cid.infinity (Table.end_cid t2 0);
  Alcotest.(check int64) "row 1 dead" Cid.infinity (Table.begin_cid t2 1)

let test_table_main_invalidation_journal () =
  (* invalidations of main rows roll back via the journal, not a scan *)
  let a = fresh () in
  let t = mk_table a in
  ignore (Table.append_row t (row 1 "a" 0));
  ignore (Table.append_row t (row 2 "b" 0));
  Table.set_begin_cid t 0 1L;
  Table.set_begin_cid t 1 1L;
  Table.publish t;
  let merged, _, finalize = Storage.Merge.run a t ~merge_cid:1L in
  finalize ();
  A.set_root a 1 (Table.handle merged);
  Alcotest.(check int) "merged to main" 2 (Table.main_rows merged);
  (* invalidate main row 0 at never-durable cid 2 *)
  Table.set_end_cid merged 0 2L;
  Table.publish merged;
  Region.crash (A.region a) Region.Drop_unfenced;
  let a2 = reopen a in
  let t2 = Table.attach a2 (A.get_root a2 1) in
  Alcotest.(check int) "rollback via journal" 1
    (Table.rollback_uncommitted t2 ~last_cid:1L);
  Alcotest.(check int64) "main end reset" Cid.infinity (Table.end_cid t2 0)

let test_table_type_check () =
  let a = fresh () in
  let t = mk_table a in
  Alcotest.check_raises "bad type"
    (Invalid_argument "Schema.validate_row: column s expects text, got int")
    (fun () -> ignore (Table.append_row t [| Value.Int 1; Value.Int 2; Value.Int 3 |]))

let test_table_nvm_bytes_grows () =
  let a = fresh () in
  let t = mk_table a in
  let b0 = Table.nvm_bytes t in
  for i = 0 to 499 do
    ignore (Table.append_row t (row i (string_of_int i) i))
  done;
  Alcotest.(check bool) "bytes grew" true (Table.nvm_bytes t > b0)

(* -------- Catalog -------- *)

let test_catalog_roundtrip () =
  let a = fresh () in
  let c = Catalog.create a in
  A.set_root a 0 (Catalog.handle c);
  let t1 = mk_table ~name:"t1" a and t2 = mk_table ~name:"t2" a in
  Catalog.add_table c ~name:"t1" ~ctrl:(Table.handle t1);
  Catalog.add_table c ~name:"t2" ~ctrl:(Table.handle t2);
  Alcotest.(check int) "count" 2 (Catalog.table_count c);
  Alcotest.(check (option int)) "find t1" (Some (Table.handle t1))
    (Catalog.find c "t1");
  Alcotest.(check (option int)) "find missing" None (Catalog.find c "zz");
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Catalog.add_table: duplicate table t1") (fun () ->
      Catalog.add_table c ~name:"t1" ~ctrl:0);
  Region.crash (A.region a) Region.Drop_unfenced;
  let a2 = reopen a in
  let c2 = Catalog.attach a2 (A.get_root a2 0) in
  Alcotest.(check (list (pair string int))) "tables durable"
    [ ("t1", Table.handle t1); ("t2", Table.handle t2) ]
    (Catalog.tables c2)

let test_catalog_swap_atomic () =
  let a = fresh () in
  let c = Catalog.create a in
  A.set_root a 0 (Catalog.handle c);
  let t1 = mk_table ~name:"t" a in
  Catalog.add_table c ~name:"t" ~ctrl:(Table.handle t1);
  Catalog.swap_table c ~name:"t" ~new_ctrl:4242;
  Region.crash (A.region a) Region.Drop_unfenced;
  let c2 = Catalog.attach (reopen a) (A.get_root a 0) in
  Alcotest.(check (option int)) "swap durable" (Some 4242) (Catalog.find c2 "t");
  Alcotest.check_raises "swap unknown" Not_found (fun () ->
      Catalog.swap_table c ~name:"nope" ~new_ctrl:1)

(* -------- Merge -------- *)

let committed_table a rows =
  let t = mk_table a in
  List.iteri
    (fun i values ->
      let r = Table.append_row t values in
      ignore i;
      Table.set_begin_cid t r 1L)
    rows;
  Table.publish t;
  t

let test_merge_compacts_dead_rows () =
  let a = fresh () in
  let t = committed_table a [ row 1 "a" 0; row 2 "b" 0; row 3 "c" 0 ] in
  (* invalidate row 1 at cid 2 (durable) *)
  Table.set_end_cid t 1 2L;
  Table.publish t;
  let merged, stats, finalize = Storage.Merge.run a t ~merge_cid:2L in
  finalize ();
  Alcotest.(check int) "in" 3 stats.Storage.Merge.rows_in;
  Alcotest.(check int) "out" 2 stats.Storage.Merge.rows_out;
  Alcotest.(check int) "main rows" 2 (Table.main_rows merged);
  Alcotest.(check int) "no delta" 0 (Table.delta_rows merged);
  Alcotest.check value_t "survivor 1" (Value.Int 1) (Table.get merged 0 0);
  Alcotest.check value_t "survivor 2" (Value.Int 3) (Table.get merged 1 0)

let test_merge_sorted_dictionary () =
  let a = fresh () in
  let t =
    committed_table a [ row 30 "zebra" 0; row 10 "apple" 1; row 20 "mango" 2 ]
  in
  let merged, _, finalize = Storage.Merge.run a t ~merge_cid:1L in
  finalize ();
  (* dictionary order: binary search must find every value *)
  Alcotest.(check (list int)) "find 10" [ 1 ]
    (Table.rows_with_value merged 0 (Value.Int 10));
  Alcotest.(check (list int)) "find zebra" [ 0 ]
    (Table.rows_with_value merged 1 (Value.Text "zebra"));
  Alcotest.(check (array value_t)) "row order stable" (row 30 "zebra" 0)
    (Table.get_row merged 0)

let test_merge_preserves_after_crash () =
  let a = fresh () in
  let t = committed_table a [ row 1 "x" 7; row 2 "y" 8 ] in
  let merged, _, finalize = Storage.Merge.run a t ~merge_cid:1L in
  finalize ();
  A.set_root a 1 (Table.handle merged);
  Region.crash (A.region a) Region.Drop_unfenced;
  let a2 = reopen a in
  let t2 = Table.attach a2 (A.get_root a2 1) in
  Alcotest.(check (array value_t)) "main durable" (row 1 "x" 7) (Table.get_row t2 0);
  Alcotest.(check (array value_t)) "main durable 2" (row 2 "y" 8) (Table.get_row t2 1)

let test_merge_then_write_delta () =
  let a = fresh () in
  let t = committed_table a [ row 1 "x" 7 ] in
  let merged, _, finalize = Storage.Merge.run a t ~merge_cid:1L in
  finalize ();
  let r = Table.append_row merged (row 2 "y" 8) in
  Table.set_begin_cid merged r 2L;
  Table.publish merged;
  Alcotest.(check int) "main+delta" 2 (Table.row_count merged);
  Alcotest.(check (list int)) "lookup spans partitions" [ 0 ]
    (Table.rows_with_value merged 0 (Value.Int 1));
  Alcotest.(check (list int)) "delta row found" [ 1 ]
    (Table.rows_with_value merged 0 (Value.Int 2))

let test_merge_reclaims_space () =
  let a = fresh () in
  let t = mk_table a in
  (* many dead versions of the same logical row *)
  for i = 0 to 199 do
    let r = Table.append_row t (row 1 "hot" i) in
    Table.set_begin_cid t r (Int64.of_int (i + 1));
    if i > 0 then Table.set_end_cid t (r - 1) (Int64.of_int (i + 1))
  done;
  Table.publish t;
  let free_before = (A.heap_stats a).A.free_bytes in
  let merged, stats, finalize = Storage.Merge.run a t ~merge_cid:200L in
  finalize ();
  Alcotest.(check int) "only one survivor" 1 stats.Storage.Merge.rows_out;
  Alcotest.(check bool) "bytes shrank" true
    (stats.Storage.Merge.bytes_after < stats.Storage.Merge.bytes_before);
  Alcotest.(check bool) "heap space reclaimed" true
    ((A.heap_stats a).A.free_bytes > free_before);
  Alcotest.check value_t "survivor value" (Value.Int 199) (Table.get merged 0 2)

(* -------- qcheck: merge equivalence -------- *)

let prop_merge_preserves_visible_rows =
  QCheck.Test.make ~name:"merge preserves exactly the visible rows" ~count:50
    QCheck.(list_of_size Gen.(int_range 1 60) (pair (int_bound 20) bool))
    (fun spec ->
      let a = fresh () in
      let t = mk_table a in
      (* build rows committed at cid 1; invalidate the flagged ones at 2 *)
      List.iteri
        (fun i (k, _) ->
          let r = Table.append_row t (row k (string_of_int k) i) in
          Table.set_begin_cid t r 1L)
        spec;
      List.iteri (fun i (_, dead) -> if dead then Table.set_end_cid t i 2L) spec;
      Table.publish t;
      let expected =
        List.filteri (fun i _ -> not (snd (List.nth spec i))) spec |> List.map fst
      in
      let merged, _, finalize = Storage.Merge.run a t ~merge_cid:2L in
      finalize ();
      let actual =
        List.init (Table.row_count merged) (fun r ->
            match Table.get merged r 0 with Value.Int k -> k | _ -> -1)
      in
      actual = expected)

let () =
  Alcotest.run "storage"
    [
      ( "value",
        [
          Alcotest.test_case "compare" `Quick test_value_compare;
          Alcotest.test_case "encode roundtrip" `Quick test_value_encode_roundtrip;
          Alcotest.test_case "compare encoded" `Quick test_value_compare_encoded;
          Alcotest.test_case "dict_key & ty names" `Quick test_value_dict_key;
        ] );
      ("schema", [ Alcotest.test_case "basics" `Quick test_schema ]);
      ( "table",
        [
          Alcotest.test_case "append/get" `Quick test_table_append_get;
          Alcotest.test_case "new rows uncommitted" `Quick
            test_table_new_rows_uncommitted;
          Alcotest.test_case "dictionary dedup" `Quick test_table_dictionary_dedup;
          Alcotest.test_case "rows_with_value" `Quick test_table_rows_with_value;
          Alcotest.test_case "publish/crash roundtrip" `Quick
            test_table_publish_crash_roundtrip;
          Alcotest.test_case "rollback uncommitted" `Quick
            test_table_rollback_uncommitted;
          Alcotest.test_case "main invalidation journal" `Quick
            test_table_main_invalidation_journal;
          Alcotest.test_case "type check" `Quick test_table_type_check;
          Alcotest.test_case "nvm bytes" `Quick test_table_nvm_bytes_grows;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "roundtrip" `Quick test_catalog_roundtrip;
          Alcotest.test_case "swap atomic" `Quick test_catalog_swap_atomic;
        ] );
      ( "merge",
        [
          Alcotest.test_case "compacts dead rows" `Quick
            test_merge_compacts_dead_rows;
          Alcotest.test_case "sorted dictionary" `Quick test_merge_sorted_dictionary;
          Alcotest.test_case "durable after crash" `Quick
            test_merge_preserves_after_crash;
          Alcotest.test_case "write after merge" `Quick test_merge_then_write_delta;
          Alcotest.test_case "reclaims space" `Quick test_merge_reclaims_space;
          QCheck_alcotest.to_alcotest prop_merge_preserves_visible_rows;
        ] );
    ]
