(* Tests for the NVM region simulator: persistence semantics, crash
   injection, cost accounting, and file round-trips. *)

module Region = Nvm.Region

let small_config = { Region.default_config with size = 4096 }

let fresh () = Region.create small_config

let test_create_zeroed () =
  let r = fresh () in
  Alcotest.(check int) "size rounded to lines" 4096 (Region.size r);
  Alcotest.(check int) "line size" 64 (Region.line_size r);
  for i = 0 to 511 do
    Alcotest.(check int64) "zero" 0L (Region.get_i64 r (i * 8))
  done

let test_store_load_roundtrip () =
  let r = fresh () in
  Region.set_i64 r 0 0x1122334455667788L;
  Alcotest.(check int64) "i64 roundtrip" 0x1122334455667788L
    (Region.get_i64 r 0);
  Region.set_int r 8 (-42);
  Alcotest.(check int) "int roundtrip" (-42) (Region.get_int r 8);
  Region.set_u8 r 100 0xAB;
  Alcotest.(check int) "u8 roundtrip" 0xAB (Region.get_u8 r 100);
  Region.write_string r 200 "hello world";
  Alcotest.(check string) "string roundtrip" "hello world"
    (Region.read_string r 200 11)

let test_unpersisted_store_lost_on_crash () =
  let r = fresh () in
  Region.set_i64 r 0 99L;
  Region.crash r Region.Drop_unfenced;
  Alcotest.(check int64) "store without persist lost" 0L (Region.get_i64 r 0)

let test_persisted_store_survives_crash () =
  let r = fresh () in
  Region.set_i64 r 0 99L;
  Region.persist r 0 8;
  Region.crash r Region.Drop_unfenced;
  Alcotest.(check int64) "persisted survives" 99L (Region.get_i64 r 0)

let test_writeback_without_fence_lost () =
  let r = fresh () in
  Region.set_i64 r 0 7L;
  Region.writeback r 0 8;
  (* no fence: CLWB completion is only guaranteed by the fence *)
  Region.crash r Region.Drop_unfenced;
  Alcotest.(check int64) "unfenced writeback lost" 0L (Region.get_i64 r 0)

let test_fence_persists_all_scheduled () =
  let r = fresh () in
  Region.set_i64 r 0 1L;
  Region.set_i64 r 1024 2L;
  Region.writeback r 0 8;
  Region.writeback r 1024 8;
  Region.fence r;
  Region.crash r Region.Drop_unfenced;
  Alcotest.(check int64) "first" 1L (Region.get_i64 r 0);
  Alcotest.(check int64) "second" 2L (Region.get_i64 r 1024)

let test_writeback_snapshot_semantics () =
  (* A store AFTER the writeback of the same line must not ride along: the
     writeback captured a snapshot. *)
  let r = fresh () in
  Region.set_i64 r 0 1L;
  Region.writeback r 0 8;
  Region.set_i64 r 0 2L;
  Region.fence r;
  Region.crash r Region.Drop_unfenced;
  Alcotest.(check int64) "snapshot value persisted, later store lost" 1L
    (Region.get_i64 r 0)

let test_line_granularity () =
  (* persisting one word makes the whole covering line durable *)
  let r = fresh () in
  Region.set_i64 r 0 1L;
  Region.set_i64 r 8 2L;
  Region.persist r 0 8;
  Region.crash r Region.Drop_unfenced;
  Alcotest.(check int64) "same-line neighbour persisted too" 2L
    (Region.get_i64 r 8)

let test_partial_line_does_not_cover_other_lines () =
  let r = fresh () in
  Region.set_i64 r 0 1L;
  Region.set_i64 r 64 2L;
  Region.persist r 0 8;
  Region.crash r Region.Drop_unfenced;
  Alcotest.(check int64) "line 0 durable" 1L (Region.get_i64 r 0);
  Alcotest.(check int64) "line 1 lost" 0L (Region.get_i64 r 64)

let test_persist_all_crash () =
  let r = fresh () in
  Region.set_i64 r 0 5L;
  Region.crash r Region.Persist_all;
  Alcotest.(check int64) "persist_all keeps dirty data" 5L (Region.get_i64 r 0)

let test_adversarial_word_atomicity () =
  (* Under adversarial crashes every 8-byte word is either old or new —
     never torn. *)
  for seed = 0 to 49 do
    let r = fresh () in
    for w = 0 to 63 do
      Region.set_i64 r (w * 8) 0x0101010101010101L
    done;
    Region.persist r 0 512;
    for w = 0 to 63 do
      Region.set_i64 r (w * 8) 0x0202020202020202L
    done;
    (* half-hearted writebacks, no fence *)
    Region.writeback r 0 256;
    Region.crash r (Region.Adversarial (Util.Prng.create (Int64.of_int seed)));
    for w = 0 to 63 do
      let v = Region.get_i64 r (w * 8) in
      if v <> 0x0101010101010101L && v <> 0x0202020202020202L then
        Alcotest.failf "torn word %d: %Lx (seed %d)" w v seed
    done
  done

let test_is_durable () =
  let r = fresh () in
  Alcotest.(check bool) "fresh region durable" true (Region.is_durable r 0 4096);
  Region.set_i64 r 0 1L;
  Alcotest.(check bool) "dirty word not durable" false (Region.is_durable r 0 8);
  Alcotest.(check bool) "other range still durable" true
    (Region.is_durable r 64 8);
  Region.writeback r 0 8;
  Alcotest.(check bool) "scheduled-not-fenced still not durable" false
    (Region.is_durable r 0 8);
  Region.fence r;
  Alcotest.(check bool) "durable after fence" true (Region.is_durable r 0 8)

let test_stats_accounting () =
  let r = fresh () in
  Region.reset_stats r;
  Region.set_i64 r 0 1L;
  ignore (Region.get_i64 r 0);
  Region.writeback r 0 8;
  Region.fence r;
  let s = Region.stats r in
  Alcotest.(check int) "stores" 1 s.stores;
  Alcotest.(check int) "loads" 1 s.loads;
  Alcotest.(check int) "writebacks" 1 s.writebacks;
  Alcotest.(check int) "fences" 1 s.fences;
  let expected_ns =
    small_config.store_ns + small_config.load_ns + small_config.writeback_ns
    + small_config.fence_ns
  in
  Alcotest.(check int) "sim time" expected_ns s.sim_ns

let test_writeback_clean_line_free () =
  let r = fresh () in
  Region.reset_stats r;
  Region.writeback r 0 64;
  (* clean line: no write-back is actually issued *)
  Alcotest.(check int) "no writeback of clean line" 0 (Region.stats r).writebacks

let test_set_latencies () =
  let r = fresh () in
  Region.set_latencies r ~load_ns:1 ~store_ns:2 ~writeback_ns:3 ~fence_ns:4;
  Region.reset_stats r;
  Region.set_i64 r 0 1L;
  Region.writeback r 0 8;
  Region.fence r;
  Alcotest.(check int) "retuned sim time" (2 + 3 + 4) (Region.stats r).sim_ns

let test_save_load_file () =
  let r = fresh () in
  Region.set_i64 r 0 123L;
  Region.persist r 0 8;
  Region.set_i64 r 8 456L (* volatile only: must NOT survive the file *);
  let path = Filename.temp_file "nvm" ".img" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Region.save_to_file r path;
      let r2 = Region.load_from_file small_config path in
      Alcotest.(check int) "size preserved" 4096 (Region.size r2);
      Alcotest.(check int64) "durable data in file" 123L (Region.get_i64 r2 0);
      Alcotest.(check int64) "volatile data not in file" 0L
        (Region.get_i64 r2 8))

let test_media_digest_tracks_durable_only () =
  let r = fresh () in
  let d0 = Region.media_digest r in
  Region.set_i64 r 0 1L;
  Alcotest.(check string) "volatile store leaves media alone" d0
    (Region.media_digest r);
  Region.persist r 0 8;
  Alcotest.(check bool) "persist changes media" true
    (Region.media_digest r <> d0)

let test_range_checks () =
  let r = fresh () in
  Alcotest.check_raises "oob read"
    (Invalid_argument
       "Region.get_i64: range [4096,+8) outside region of 4096 bytes")
    (fun () -> ignore (Region.get_i64 r 4096))

let test_bytes_roundtrip_spanning_lines () =
  let r = fresh () in
  let data = Bytes.init 300 (fun i -> Char.chr (i mod 256)) in
  Region.write_bytes r 50 data;
  Alcotest.(check bytes) "spanning blit roundtrip" data (Region.read_bytes r 50 300);
  Region.persist r 50 300;
  Region.crash r Region.Drop_unfenced;
  Alcotest.(check bytes) "spanning blit durable" data (Region.read_bytes r 50 300)

let test_persist_disabled_dram_semantics () =
  let r = fresh () in
  Region.set_persist_enabled r false;
  Region.set_i64 r 0 7L;
  Alcotest.(check int64) "write readable" 7L (Region.get_i64 r 0);
  (* persists are free no-ops *)
  Region.reset_stats r;
  Region.persist r 0 8;
  Alcotest.(check int) "no writebacks" 0 (Region.stats r).writebacks;
  Alcotest.(check int) "no fences" 0 (Region.stats r).fences;
  (* power loss takes everything, even "persisted" data *)
  Region.crash r Region.Drop_unfenced;
  Alcotest.(check int64) "DRAM loses all" 0L (Region.get_i64 r 0)

let test_persist_toggle_preserves_contents () =
  let r = fresh () in
  Region.set_i64 r 0 1L;
  (* disabling moves the volatile view into the plain array *)
  Region.set_persist_enabled r false;
  Alcotest.(check int64) "still readable" 1L (Region.get_i64 r 0);
  Region.set_i64 r 8 2L;
  Region.set_persist_enabled r true;
  Alcotest.(check int64) "after re-enable" 2L (Region.get_i64 r 8)

(* -- qcheck properties -- *)

(* random programs of stores/persists/crashes checked against a model that
   tracks (volatile, durable) byte arrays *)
let prop_crash_model =
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (6, map2 (fun o v -> `Store (o * 8, v)) (int_bound 63) int64);
          (2, map (fun o -> `Persist (o * 8)) (int_bound 63));
          (1, return `Crash);
        ])
  in
  let print_op = function
    | `Store (o, v) -> Printf.sprintf "store %d %Ld" o v
    | `Persist o -> Printf.sprintf "persist %d" o
    | `Crash -> "crash"
  in
  QCheck.Test.make ~name:"region agrees with volatile/durable model" ~count:300
    QCheck.(make ~print:(fun l -> String.concat "; " (List.map print_op l))
              Gen.(list_size (int_range 1 60) gen_op))
    (fun ops ->
      let r = Region.create { Region.default_config with size = 512 } in
      let volatile = Array.make 64 0L and durable = Array.make 64 0L in
      let line_words = 8 in
      List.iter
        (fun op ->
          match op with
          | `Store (off, v) ->
              Region.set_i64 r off v;
              volatile.(off / 8) <- v
          | `Persist off ->
              Region.persist r off 8;
              (* whole covering line becomes durable *)
              let base = off / 8 / line_words * line_words in
              for w = base to base + line_words - 1 do
                durable.(w) <- volatile.(w)
              done
          | `Crash ->
              Region.crash r Region.Drop_unfenced;
              Array.blit durable 0 volatile 0 64)
        ops;
      Array.for_all Fun.id
        (Array.init 64 (fun w -> Region.get_i64 r (w * 8) = volatile.(w))))

let prop_adversarial_crash_only_dirty_words_change =
  QCheck.Test.make ~name:"adversarial crash never invents bytes" ~count:100
    QCheck.(pair int64 (list_of_size Gen.(int_range 0 40) (int_bound 63)))
    (fun (seed, writes) ->
      let r = Region.create { Region.default_config with size = 512 } in
      (* baseline: persist a known pattern *)
      for w = 0 to 63 do
        Region.set_i64 r (w * 8) (Int64.of_int w)
      done;
      Region.persist r 0 512;
      let touched = Array.make 64 false in
      List.iter
        (fun w ->
          Region.set_i64 r (w * 8) (Int64.of_int (1000 + w));
          touched.(w) <- true)
        writes;
      Region.crash r (Region.Adversarial (Util.Prng.create seed));
      Array.for_all Fun.id
        (Array.init 64 (fun w ->
             let v = Region.get_i64 r (w * 8) in
             if touched.(w) then
               v = Int64.of_int w || v = Int64.of_int (1000 + w)
             else v = Int64.of_int w)))

let () =
  Alcotest.run "nvm"
    [
      ( "region",
        [
          Alcotest.test_case "create zeroed" `Quick test_create_zeroed;
          Alcotest.test_case "store/load roundtrip" `Quick
            test_store_load_roundtrip;
          Alcotest.test_case "unpersisted store lost" `Quick
            test_unpersisted_store_lost_on_crash;
          Alcotest.test_case "persisted store survives" `Quick
            test_persisted_store_survives_crash;
          Alcotest.test_case "writeback without fence lost" `Quick
            test_writeback_without_fence_lost;
          Alcotest.test_case "fence persists scheduled" `Quick
            test_fence_persists_all_scheduled;
          Alcotest.test_case "writeback snapshots the line" `Quick
            test_writeback_snapshot_semantics;
          Alcotest.test_case "line granularity" `Quick test_line_granularity;
          Alcotest.test_case "persist does not leak across lines" `Quick
            test_partial_line_does_not_cover_other_lines;
          Alcotest.test_case "persist_all crash" `Quick test_persist_all_crash;
          Alcotest.test_case "adversarial word atomicity" `Quick
            test_adversarial_word_atomicity;
          Alcotest.test_case "is_durable" `Quick test_is_durable;
          Alcotest.test_case "bytes roundtrip across lines" `Quick
            test_bytes_roundtrip_spanning_lines;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "stats" `Quick test_stats_accounting;
          Alcotest.test_case "clean line writeback free" `Quick
            test_writeback_clean_line_free;
          Alcotest.test_case "set_latencies" `Quick test_set_latencies;
        ] );
      ( "dram-mode",
        [
          Alcotest.test_case "disabled = DRAM semantics" `Quick
            test_persist_disabled_dram_semantics;
          Alcotest.test_case "toggle preserves contents" `Quick
            test_persist_toggle_preserves_contents;
        ] );
      ( "files",
        [
          Alcotest.test_case "save/load" `Quick test_save_load_file;
          Alcotest.test_case "media digest" `Quick
            test_media_digest_tracks_durable_only;
          Alcotest.test_case "range checks" `Quick test_range_checks;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_crash_model;
          QCheck_alcotest.to_alcotest prop_adversarial_crash_only_dirty_words_change;
        ] );
    ]
