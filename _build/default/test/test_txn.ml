(* Tests for the MVCC transaction manager: visibility, own-writes,
   conflicts, interleavings, and the commit protocol's crash behaviour. *)

module Region = Nvm.Region
module A = Nvm_alloc.Allocator
module Value = Storage.Value
module Schema = Storage.Schema
module Table = Storage.Table
module Cid = Storage.Cid
module Mvcc = Txn.Mvcc

let schema =
  [| Schema.column ~indexed:true "k" Value.Int_t; Schema.column "v" Value.Int_t |]

type env = {
  alloc : A.t;
  table : Table.t;
  mgr : Mvcc.manager;
  last_durable : int64 ref;
}

let make_env ?(size = 8 * 1024 * 1024) () =
  let alloc = A.format (Region.create { Region.default_config with size }) in
  let table = Table.create alloc ~name:"t" schema in
  A.set_root alloc 1 (Table.handle table);
  let last_durable = ref Cid.zero in
  let region = A.region alloc in
  let cell = A.alloc alloc 8 in
  A.activate alloc cell;
  A.set_root alloc 2 cell;
  let persist_commit cid =
    Region.set_i64 region cell cid;
    Region.persist region cell 8;
    last_durable := cid
  in
  let mgr = Mvcc.create_manager ~persist_commit ~last_cid:Cid.zero () in
  { alloc; table; mgr; last_durable }

let row k v = [| Value.Int k; Value.Int v |]

let test_insert_visible_after_commit () =
  let e = make_env () in
  let t1 = Mvcc.begin_txn e.mgr in
  let r = Mvcc.insert e.mgr t1 e.table (row 1 10) in
  (* another txn started before commit cannot see it *)
  let t2 = Mvcc.begin_txn e.mgr in
  Alcotest.(check bool) "invisible to concurrent" false
    (Mvcc.row_visible t2 e.table r);
  (* own write is visible *)
  Alcotest.(check bool) "own write visible" true (Mvcc.row_visible t1 e.table r);
  let cid = Mvcc.commit e.mgr t1 in
  Alcotest.(check int64) "first cid" 1L cid;
  (* t2's snapshot predates the commit *)
  Alcotest.(check bool) "snapshot isolation" false (Mvcc.row_visible t2 e.table r);
  Mvcc.abort e.mgr t2;
  let t3 = Mvcc.begin_txn e.mgr in
  Alcotest.(check bool) "new txn sees it" true (Mvcc.row_visible t3 e.table r)

let test_read_only_consumes_no_cid () =
  let e = make_env () in
  let t = Mvcc.begin_txn e.mgr in
  let cid = Mvcc.commit e.mgr t in
  Alcotest.(check int64) "snapshot returned" Cid.zero cid;
  Alcotest.(check int64) "no cid consumed" Cid.zero (Mvcc.last_cid e.mgr)

let test_abort_leaves_row_dead () =
  let e = make_env () in
  let t1 = Mvcc.begin_txn e.mgr in
  let r = Mvcc.insert e.mgr t1 e.table (row 1 10) in
  Mvcc.abort e.mgr t1;
  let t2 = Mvcc.begin_txn e.mgr in
  Alcotest.(check bool) "aborted insert invisible" false
    (Mvcc.row_visible t2 e.table r);
  Alcotest.(check int64) "begin stays infinity" Cid.infinity
    (Table.begin_cid e.table r)

let test_update_creates_version () =
  let e = make_env () in
  let t1 = Mvcc.begin_txn e.mgr in
  let r0 = Mvcc.insert e.mgr t1 e.table (row 1 10) in
  ignore (Mvcc.commit e.mgr t1);
  let t2 = Mvcc.begin_txn e.mgr in
  let r1 = Mvcc.update e.mgr t2 e.table r0 (row 1 20) in
  (* before commit: t2 sees new version, not old; others see old *)
  Alcotest.(check bool) "t2 sees new" true (Mvcc.row_visible t2 e.table r1);
  Alcotest.(check bool) "t2 does not see old" false (Mvcc.row_visible t2 e.table r0);
  let t3 = Mvcc.begin_txn e.mgr in
  Alcotest.(check bool) "t3 still sees old" true (Mvcc.row_visible t3 e.table r0);
  Alcotest.(check bool) "t3 does not see new" false (Mvcc.row_visible t3 e.table r1);
  ignore (Mvcc.commit e.mgr t2);
  (* t3's snapshot is stable *)
  Alcotest.(check bool) "t3 keeps old after commit" true
    (Mvcc.row_visible t3 e.table r0);
  Mvcc.abort e.mgr t3;
  let t4 = Mvcc.begin_txn e.mgr in
  Alcotest.(check bool) "t4 sees new" true (Mvcc.row_visible t4 e.table r1);
  Alcotest.(check bool) "t4 does not see old" false (Mvcc.row_visible t4 e.table r0)

let test_delete () =
  let e = make_env () in
  let t1 = Mvcc.begin_txn e.mgr in
  let r = Mvcc.insert e.mgr t1 e.table (row 1 10) in
  ignore (Mvcc.commit e.mgr t1);
  let t2 = Mvcc.begin_txn e.mgr in
  Mvcc.delete e.mgr t2 e.table r;
  Alcotest.(check bool) "own delete invisible" false (Mvcc.row_visible t2 e.table r);
  ignore (Mvcc.commit e.mgr t2);
  let t3 = Mvcc.begin_txn e.mgr in
  Alcotest.(check bool) "deleted invisible" false (Mvcc.row_visible t3 e.table r)

let test_write_write_conflict () =
  let e = make_env () in
  let t0 = Mvcc.begin_txn e.mgr in
  let r = Mvcc.insert e.mgr t0 e.table (row 1 10) in
  ignore (Mvcc.commit e.mgr t0);
  let t1 = Mvcc.begin_txn e.mgr in
  let t2 = Mvcc.begin_txn e.mgr in
  ignore (Mvcc.update e.mgr t1 e.table r (row 1 20));
  (* second writer loses immediately *)
  (try
     ignore (Mvcc.update e.mgr t2 e.table r (row 1 30));
     Alcotest.fail "expected Write_conflict"
   with Mvcc.Write_conflict _ -> ());
  Mvcc.abort e.mgr t2;
  ignore (Mvcc.commit e.mgr t1)

let test_conflict_with_committed_invalidation () =
  let e = make_env () in
  let t0 = Mvcc.begin_txn e.mgr in
  let r = Mvcc.insert e.mgr t0 e.table (row 1 10) in
  ignore (Mvcc.commit e.mgr t0);
  (* t1 snapshots now; t2 updates and commits *)
  let t1 = Mvcc.begin_txn e.mgr in
  let t2 = Mvcc.begin_txn e.mgr in
  ignore (Mvcc.update e.mgr t2 e.table r (row 1 20));
  ignore (Mvcc.commit e.mgr t2);
  (* t1 still sees the old version but must not be able to update it *)
  Alcotest.(check bool) "old visible to old snapshot" true
    (Mvcc.row_visible t1 e.table r);
  (try
     ignore (Mvcc.update e.mgr t1 e.table r (row 1 30));
     Alcotest.fail "expected Write_conflict"
   with Mvcc.Write_conflict _ -> ());
  Mvcc.abort e.mgr t1

let test_conflict_released_after_abort () =
  let e = make_env () in
  let t0 = Mvcc.begin_txn e.mgr in
  let r = Mvcc.insert e.mgr t0 e.table (row 1 10) in
  ignore (Mvcc.commit e.mgr t0);
  let t1 = Mvcc.begin_txn e.mgr in
  ignore (Mvcc.update e.mgr t1 e.table r (row 1 20));
  Mvcc.abort e.mgr t1;
  (* claim is released and the row was not actually invalidated *)
  let t2 = Mvcc.begin_txn e.mgr in
  ignore (Mvcc.update e.mgr t2 e.table r (row 1 30));
  ignore (Mvcc.commit e.mgr t2);
  let t3 = Mvcc.begin_txn e.mgr in
  Alcotest.(check bool) "r superseded" false (Mvcc.row_visible t3 e.table r)

let test_update_own_insert () =
  let e = make_env () in
  let t = Mvcc.begin_txn e.mgr in
  let r0 = Mvcc.insert e.mgr t e.table (row 1 10) in
  let r1 = Mvcc.update e.mgr t e.table r0 (row 1 11) in
  ignore (Mvcc.commit e.mgr t);
  let t2 = Mvcc.begin_txn e.mgr in
  Alcotest.(check bool) "old self-superseded version invisible" false
    (Mvcc.row_visible t2 e.table r0);
  Alcotest.(check bool) "final version visible" true (Mvcc.row_visible t2 e.table r1)

let test_finished_txn_rejected () =
  let e = make_env () in
  let t = Mvcc.begin_txn e.mgr in
  ignore (Mvcc.commit e.mgr t);
  (try
     ignore (Mvcc.insert e.mgr t e.table (row 1 1));
     Alcotest.fail "expected Not_active"
   with Mvcc.Not_active _ -> ());
  (try
     ignore (Mvcc.commit e.mgr t);
     Alcotest.fail "expected Not_active on double commit"
   with Mvcc.Not_active _ -> ())

let test_active_count () =
  let e = make_env () in
  Alcotest.(check int) "none" 0 (Mvcc.active_count e.mgr);
  let t1 = Mvcc.begin_txn e.mgr and t2 = Mvcc.begin_txn e.mgr in
  Alcotest.(check int) "two" 2 (Mvcc.active_count e.mgr);
  ignore (Mvcc.commit e.mgr t1);
  Mvcc.abort e.mgr t2;
  Alcotest.(check int) "drained" 0 (Mvcc.active_count e.mgr)

let test_observer_events () =
  let events = ref [] in
  let e = make_env () in
  let mgr =
    Mvcc.create_manager
      ~observer:(fun ev -> events := ev :: !events)
      ~persist_commit:ignore ~last_cid:Cid.zero ()
  in
  let t = Mvcc.begin_txn mgr in
  ignore (Mvcc.insert mgr t e.table (row 1 1));
  ignore (Mvcc.commit mgr t);
  let t2 = Mvcc.begin_txn mgr in
  ignore (Mvcc.insert mgr t2 e.table (row 2 2));
  Mvcc.abort mgr t2;
  let kinds =
    List.rev_map
      (function
        | Mvcc.Ev_insert _ -> "insert"
        | Mvcc.Ev_commit _ -> "commit"
        | Mvcc.Ev_abort _ -> "abort")
      !events
  in
  Alcotest.(check (list string)) "event order"
    [ "insert"; "commit"; "insert"; "abort" ] kinds

let test_commit_point_crash_semantics () =
  (* Crash right after commit returns: everything must be durable.
     Crash mid-commit (simulated by stamping without the persist hook
     firing): recovery rolls the transaction back entirely. *)
  let e = make_env () in
  let t = Mvcc.begin_txn e.mgr in
  ignore (Mvcc.insert e.mgr t e.table (row 1 10));
  ignore (Mvcc.commit e.mgr t);
  Region.crash (A.region e.alloc) Region.Drop_unfenced;
  let a2 = A.open_existing (A.region e.alloc) in
  let table2 = Table.attach a2 (A.get_root a2 1) in
  ignore (Table.rollback_uncommitted table2 ~last_cid:!(e.last_durable));
  Alcotest.(check int) "row survived" 1 (Table.row_count table2);
  Alcotest.(check int64) "committed begin" 1L (Table.begin_cid table2 0)

(* qcheck: random interleaved histories against a sequential model of
   committed state *)
let prop_serializable_committed_state =
  (* ops: (txn_slot, action) over 3 concurrent slots; action 0..2 insert,
     3 commit, 4 abort. The model applies inserts of a slot only when that
     slot commits. At the end, visible rows = model. *)
  QCheck.Test.make ~name:"committed state equals sequential model" ~count:80
    QCheck.(list_of_size Gen.(int_range 1 60) (pair (int_bound 2) (int_bound 4)))
    (fun script ->
      let e = make_env () in
      let slots = Array.make 3 None in
      let staged = Array.make 3 [] in
      let model = ref [] in
      let counter = ref 0 in
      List.iter
        (fun (s, action) ->
          match (slots.(s), action) with
          | None, _ ->
              slots.(s) <- Some (Mvcc.begin_txn e.mgr);
              staged.(s) <- []
          | Some txn, (0 | 1 | 2) ->
              incr counter;
              ignore (Mvcc.insert e.mgr txn e.table (row !counter !counter));
              staged.(s) <- !counter :: staged.(s)
          | Some txn, 3 ->
              ignore (Mvcc.commit e.mgr txn);
              model := !model @ List.rev staged.(s);
              slots.(s) <- None
          | Some txn, 4 ->
              Mvcc.abort e.mgr txn;
              slots.(s) <- None
          | _ -> assert false)
        script;
      (* commit leftovers in slot order *)
      Array.iteri
        (fun s slot ->
          match slot with
          | Some txn ->
              ignore (Mvcc.commit e.mgr txn);
              model := !model @ List.rev staged.(s)
          | None -> ())
        slots;
      let reader = Mvcc.begin_txn e.mgr in
      let seen = ref [] in
      for r = 0 to Table.row_count e.table - 1 do
        if Mvcc.row_visible reader e.table r then
          match Table.get e.table r 0 with
          | Value.Int k -> seen := k :: !seen
          | _ -> ()
      done;
      List.sort compare !seen = List.sort compare !model)

let () =
  Alcotest.run "txn"
    [
      ( "visibility",
        [
          Alcotest.test_case "insert visible after commit" `Quick
            test_insert_visible_after_commit;
          Alcotest.test_case "read-only no cid" `Quick test_read_only_consumes_no_cid;
          Alcotest.test_case "abort leaves dead row" `Quick
            test_abort_leaves_row_dead;
          Alcotest.test_case "update versions" `Quick test_update_creates_version;
          Alcotest.test_case "delete" `Quick test_delete;
          Alcotest.test_case "update own insert" `Quick test_update_own_insert;
        ] );
      ( "conflicts",
        [
          Alcotest.test_case "write-write" `Quick test_write_write_conflict;
          Alcotest.test_case "committed invalidation" `Quick
            test_conflict_with_committed_invalidation;
          Alcotest.test_case "released after abort" `Quick
            test_conflict_released_after_abort;
        ] );
      ( "lifecycle",
        [
          Alcotest.test_case "finished txn rejected" `Quick
            test_finished_txn_rejected;
          Alcotest.test_case "active count" `Quick test_active_count;
          Alcotest.test_case "observer events" `Quick test_observer_events;
          Alcotest.test_case "commit point crash semantics" `Quick
            test_commit_point_crash_semantics;
          QCheck_alcotest.to_alcotest prop_serializable_committed_state;
        ] );
    ]
