(* Cross-cutting edge cases: odd configurations, empty and degenerate
   inputs, large values, multi-table atomicity — the long tail a
   production engine has to get right. *)

module E = Core.Engine
module Region = Nvm.Region
module A = Nvm_alloc.Allocator
module Value = Storage.Value
module Schema = Storage.Schema
module Table = Storage.Table
module Cid = Storage.Cid
module Prng = Util.Prng

let nvm_engine ?(size = 16 * 1024 * 1024) () =
  E.create (E.default_config ~size E.Nvm)

(* -------- region configurations -------- *)

let test_region_odd_size_rounds_up () =
  let r = Region.create { Region.default_config with size = 1000 } in
  Alcotest.(check int) "rounded to full lines" 1024 (Region.size r)

let test_region_alternate_line_size () =
  let r = Region.create { Region.default_config with size = 4096; line_size = 128 } in
  Alcotest.(check int) "line size" 128 (Region.line_size r);
  Region.set_i64 r 8 5L;
  Region.persist r 8 8;
  (* 128-byte line granularity: offset 120 shares the line *)
  Region.set_i64 r 120 6L;
  Region.crash r Region.Drop_unfenced;
  Alcotest.(check int64) "persisted" 5L (Region.get_i64 r 8)

let test_region_bad_line_size () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Region.create: line_size must be a power of two")
    (fun () ->
      ignore (Region.create { Region.default_config with line_size = 48 }))

(* -------- allocator edges -------- *)

let test_alloc_zero_and_tiny () =
  let a = A.format (Region.create (Region.config_with_size 65536)) in
  let p0 = A.alloc a 0 in
  Alcotest.(check bool) "min payload" true (A.usable_size a p0 >= 8);
  A.activate a p0;
  let p1 = A.alloc a 1 in
  Alcotest.(check bool) "rounded" true (A.usable_size a p1 >= 8);
  A.activate a p1

let test_alloc_exact_fit_no_split () =
  let a = A.format (Region.create (Region.config_with_size 65536)) in
  let p = A.alloc a 100 in
  A.activate a p;
  A.free a p;
  (* re-allocating with a size that cannot split (remainder < min block)
     must hand back the whole block *)
  let p2 = A.alloc a (A.usable_size a p - 8) in
  Alcotest.(check int) "same block reused" p p2;
  Alcotest.(check int) "no shrink below original" (A.usable_size a p)
    (A.usable_size a p2)

let test_alloc_negative_rejected () =
  let a = A.format (Region.create (Region.config_with_size 65536)) in
  Alcotest.check_raises "negative"
    (Invalid_argument "Allocator.alloc: negative size") (fun () ->
      ignore (A.alloc a (-1)))

(* -------- table / merge edges -------- *)

let simple = [| Schema.column ~indexed:true "k" Value.Int_t |]

let test_merge_empty_table () =
  let a = A.format (Region.create (Region.config_with_size (4 * 1024 * 1024))) in
  let t = Table.create a ~name:"t" simple in
  let merged, stats, finalize = Storage.Merge.run a t ~merge_cid:Cid.zero in
  finalize ();
  Alcotest.(check int) "no rows" 0 stats.Storage.Merge.rows_out;
  Alcotest.(check int) "empty main" 0 (Table.main_rows merged);
  (* still writable *)
  ignore (Table.append_row merged [| Value.Int 1 |])

let test_merge_all_rows_dead () =
  let a = A.format (Region.create (Region.config_with_size (4 * 1024 * 1024))) in
  let t = Table.create a ~name:"t" simple in
  for i = 0 to 9 do
    let r = Table.append_row t [| Value.Int i |] in
    Table.set_begin_cid t r 1L;
    Table.set_end_cid t r 2L
  done;
  Table.publish t;
  let merged, stats, finalize = Storage.Merge.run a t ~merge_cid:2L in
  finalize ();
  Alcotest.(check int) "in" 10 stats.Storage.Merge.rows_in;
  Alcotest.(check int) "all compacted away" 0 stats.Storage.Merge.rows_out;
  Alcotest.(check int) "dictionaries emptied" 0 (Table.main_dictionary_size merged 0)

let test_double_merge () =
  let e = nvm_engine () in
  E.create_table e ~name:"t" simple;
  E.with_txn e (fun txn -> ignore (E.insert e txn "t" [| Value.Int 1 |]));
  ignore (E.merge e "t");
  ignore (E.merge e "t");
  E.with_txn e (fun txn -> Alcotest.(check int) "still there" 1 (E.count e txn "t"))

let test_float_column_roundtrip_through_merge_and_crash () =
  let e = nvm_engine () in
  E.create_table e ~name:"f"
    [| Schema.column "x" Value.Float_t; Schema.column "tag" Value.Int_t |];
  let values = [ 0.0; -0.0; 1.5; -273.15; 1e300; 4e-300 ] in
  E.with_txn e (fun txn ->
      List.iteri
        (fun i x -> ignore (E.insert e txn "f" [| Value.Float x; Value.Int i |]))
        values);
  ignore (E.merge e "f");
  let e2, _ = E.recover (E.crash e Region.Drop_unfenced) in
  E.with_txn e2 (fun txn ->
      let got = ref [] in
      E.scan e2 txn "f" (fun _ vals ->
          match vals.(0) with Value.Float x -> got := x :: !got | _ -> ());
      Alcotest.(check (list (float 0.0))) "floats survive merge+crash"
        (List.sort compare values)
        (List.sort compare !got))

let test_large_text_values () =
  let e = nvm_engine ~size:(32 * 1024 * 1024) () in
  E.create_table e ~name:"t"
    [| Schema.column ~indexed:true "k" Value.Int_t; Schema.column "blob" Value.Text_t |];
  let blob = String.init 100_000 (fun i -> Char.chr (32 + (i mod 90))) in
  E.with_txn e (fun txn ->
      ignore (E.insert e txn "t" [| Value.Int 1; Value.Text blob |]));
  let e2, _ = E.recover (E.crash e Region.Drop_unfenced) in
  E.with_txn e2 (fun txn ->
      match E.lookup e2 txn "t" ~col:"k" (Value.Int 1) with
      | [ (_, [| _; Value.Text b |]) ] ->
          Alcotest.(check int) "100k blob intact" (String.length blob)
            (String.length b);
          Alcotest.(check bool) "content equal" true (b = blob)
      | _ -> Alcotest.fail "row lost")

let test_many_tables_recovery () =
  let e = nvm_engine ~size:(64 * 1024 * 1024) () in
  for i = 0 to 19 do
    E.create_table e ~name:(Printf.sprintf "t%02d" i) simple;
    E.with_txn e (fun txn ->
        ignore (E.insert e txn (Printf.sprintf "t%02d" i) [| Value.Int i |]))
  done;
  let e2, stats = E.recover (E.crash e Region.Drop_unfenced) in
  (match stats.E.detail with
  | E.Rv_nvm { tables; _ } -> Alcotest.(check int) "20 tables" 20 tables
  | _ -> Alcotest.fail "wrong mode");
  Alcotest.(check int) "names preserved" 20 (List.length (E.table_names e2));
  E.with_txn e2 (fun txn ->
      for i = 0 to 19 do
        Alcotest.(check int)
          (Printf.sprintf "t%02d content" i)
          1
          (E.count e2 txn (Printf.sprintf "t%02d" i))
      done)

let test_cross_table_transaction_atomic_under_crash () =
  (* one transaction spanning two tables either lands in both or neither *)
  for fuse = 0 to 30 do
    let e = nvm_engine () in
    E.create_table e ~name:"a" simple;
    E.create_table e ~name:"b" simple;
    (* a committed baseline *)
    E.with_txn e (fun txn ->
        ignore (E.insert e txn "a" [| Value.Int 0 |]);
        ignore (E.insert e txn "b" [| Value.Int 0 |]));
    let region = E.region e in
    Region.arm_crash region ~after_ops:(fuse * 7);
    (try
       E.with_txn e (fun txn ->
           ignore (E.insert e txn "a" [| Value.Int 1 |]);
           ignore (E.insert e txn "b" [| Value.Int 1 |]))
     with Region.Power_failure -> ());
    Region.disarm_crash region;
    let e2, _ =
      E.recover (E.crash e (Region.Adversarial (Prng.create (Int64.of_int fuse))))
    in
    E.with_txn e2 (fun txn ->
        let ca = E.count e2 txn "a" and cb = E.count e2 txn "b" in
        if ca <> cb then
          Alcotest.failf "cross-table atomicity broken at fuse %d: a=%d b=%d"
            fuse ca cb)
  done

let test_delete_then_reinsert_same_key () =
  let e = nvm_engine () in
  E.create_table e ~name:"t" simple;
  let r = E.with_txn e (fun txn -> E.insert e txn "t" [| Value.Int 7 |]) in
  E.with_txn e (fun txn ->
      E.delete e txn "t" r;
      ignore (E.insert e txn "t" [| Value.Int 7 |]));
  E.with_txn e (fun txn ->
      Alcotest.(check int) "exactly one version visible" 1
        (List.length (E.lookup e txn "t" ~col:"k" (Value.Int 7))))

let test_empty_string_dictionary_entry () =
  let e = nvm_engine () in
  E.create_table e ~name:"t"
    [| Schema.column ~indexed:true "s" Value.Text_t |];
  E.with_txn e (fun txn ->
      ignore (E.insert e txn "t" [| Value.Text "" |]);
      ignore (E.insert e txn "t" [| Value.Text "" |]);
      ignore (E.insert e txn "t" [| Value.Text "x" |]));
  E.with_txn e (fun txn ->
      Alcotest.(check int) "empty string lookup" 2
        (List.length (E.lookup e txn "t" ~col:"s" (Value.Text ""))));
  ignore (E.merge e "t");
  E.with_txn e (fun txn ->
      Alcotest.(check int) "after merge" 2
        (List.length (E.lookup e txn "t" ~col:"s" (Value.Text ""))))

let test_region_out_of_space_surfaces () =
  (* exhausting the region raises Out_of_space, not corruption *)
  let e = nvm_engine ~size:(A.min_region_size + 65536) () in
  E.create_table e ~name:"t"
    [| Schema.column "blob" Value.Text_t |];
  (try
     for _ = 1 to 10_000 do
       E.with_txn e (fun txn ->
           ignore (E.insert e txn "t" [| Value.Text (String.make 1000 'x') |]))
     done;
     Alcotest.fail "expected Out_of_space"
   with A.Out_of_space _ -> ())

let () =
  Alcotest.run "edge"
    [
      ( "region",
        [
          Alcotest.test_case "odd size rounds" `Quick test_region_odd_size_rounds_up;
          Alcotest.test_case "128B lines" `Quick test_region_alternate_line_size;
          Alcotest.test_case "bad line size" `Quick test_region_bad_line_size;
        ] );
      ( "allocator",
        [
          Alcotest.test_case "zero/tiny sizes" `Quick test_alloc_zero_and_tiny;
          Alcotest.test_case "exact fit" `Quick test_alloc_exact_fit_no_split;
          Alcotest.test_case "negative size" `Quick test_alloc_negative_rejected;
        ] );
      ( "storage",
        [
          Alcotest.test_case "merge empty table" `Quick test_merge_empty_table;
          Alcotest.test_case "merge all dead" `Quick test_merge_all_rows_dead;
          Alcotest.test_case "double merge" `Quick test_double_merge;
          Alcotest.test_case "float columns" `Quick
            test_float_column_roundtrip_through_merge_and_crash;
          Alcotest.test_case "100k text blobs" `Quick test_large_text_values;
          Alcotest.test_case "empty string values" `Quick
            test_empty_string_dictionary_entry;
        ] );
      ( "engine",
        [
          Alcotest.test_case "20 tables recover" `Quick test_many_tables_recovery;
          Alcotest.test_case "cross-table atomicity" `Slow
            test_cross_table_transaction_atomic_under_crash;
          Alcotest.test_case "delete+reinsert in one txn" `Quick
            test_delete_then_reinsert_same_key;
          Alcotest.test_case "out of space surfaces" `Quick
            test_region_out_of_space_surfaces;
        ] );
    ]
