(* Tests for the SQL front end: lexer/parser coverage, error reporting,
   and end-to-end execution against the engine. *)

module E = Core.Engine
module Sql = Repl.Sql
module Value = Storage.Value
module Schema = Storage.Schema
module P = Query.Predicate
module Agg = Query.Aggregate

let engine () = E.create (E.default_config ~size:(16 * 1024 * 1024) E.Nvm)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

(* -------- parsing -------- *)

let test_parse_create () =
  match Sql.parse "CREATE TABLE t (name TEXT INDEXED, qty INT, price FLOAT)" with
  | Sql.Create_table { table; schema } ->
      Alcotest.(check string) "table" "t" table;
      Alcotest.(check int) "arity" 3 (Schema.arity schema);
      Alcotest.(check bool) "indexed" true schema.(0).Schema.indexed;
      Alcotest.(check bool) "types" true
        (schema.(0).Schema.ty = Value.Text_t
        && schema.(1).Schema.ty = Value.Int_t
        && schema.(2).Schema.ty = Value.Float_t)
  | _ -> Alcotest.fail "wrong statement"

let test_parse_case_insensitive () =
  match Sql.parse "select * from Widgets where Qty >= 2 limit 5" with
  | Sql.Select { table; where = [ (col, P.Cmp (P.Ge, Value.Int 2)) ]; limit = Some 5; _ } ->
      Alcotest.(check string) "table keeps case" "Widgets" table;
      Alcotest.(check string) "column keeps case" "Qty" col
  | _ -> Alcotest.fail "wrong parse"

let test_parse_string_escapes () =
  match Sql.parse "INSERT INTO t VALUES ('it''s', -3, 2.5)" with
  | Sql.Insert { values = [| Value.Text s; Value.Int n; Value.Float f |]; _ } ->
      Alcotest.(check string) "escaped quote" "it's" s;
      Alcotest.(check int) "negative int" (-3) n;
      Alcotest.(check (float 0.001)) "float" 2.5 f
  | _ -> Alcotest.fail "wrong parse"

let test_parse_where_forms () =
  (match Sql.parse "SELECT * FROM t WHERE a BETWEEN 1 AND 5 AND b IN (1, 2) AND c != 'x'" with
  | Sql.Select { where; _ } ->
      Alcotest.(check int) "three conjuncts" 3 (List.length where)
  | _ -> Alcotest.fail "wrong parse");
  match Sql.parse "SELECT COUNT(*), MIN(a) FROM t GROUP BY b" with
  | Sql.Select { projections = [ Sql.Agg Agg.Count; Sql.Agg (Agg.Min "a") ]; group_by = Some "b"; _ } -> ()
  | _ -> Alcotest.fail "wrong aggregate parse"

let test_parse_errors () =
  let bad input expect =
    match Sql.parse input with
    | exception Sql.Parse_error m ->
        Alcotest.(check bool)
          (Printf.sprintf "%s mentions %s (got: %s)" input expect m)
          true (contains m expect)
    | _ -> Alcotest.failf "%s should not parse" input
  in
  bad "FROB t" "unknown statement";
  bad "SELECT * FROM" "expected a name";
  bad "INSERT INTO t VALUES ('unterminated" "unterminated string";
  bad "SELECT * FROM t WHERE a ~ 1" "unexpected character";
  bad "SELECT * FROM t extra" "trailing input"

let test_star_aggregate_mix_rejected () =
  (* parses fine; the shape check fires at execution *)
  let e = engine () in
  ignore (Sql.execute e (Sql.parse "CREATE TABLE t (k INT)"));
  match Sql.execute e (Sql.parse "SELECT *, COUNT(*) FROM t") with
  | exception Sql.Parse_error m ->
      Alcotest.(check bool) "message" true (contains m "cannot mix")
  | _ -> Alcotest.fail "expected rejection"

(* -------- execution -------- *)

let run e s = Sql.execute e (Sql.parse s)

let test_execute_roundtrip () =
  let e = engine () in
  ignore (run e "CREATE TABLE t (name TEXT INDEXED, qty INT)");
  ignore (run e "INSERT INTO t VALUES ('a', 1)");
  ignore (run e "INSERT INTO t VALUES ('b', 2)");
  let out = run e "SELECT * FROM t WHERE qty >= 2" in
  Alcotest.(check bool) "row b present" true (contains out "b");
  Alcotest.(check bool) "row a filtered" false (contains out "| a");
  let out = run e "SELECT COUNT(*), SUM(qty) FROM t" in
  Alcotest.(check bool) "count 2" true (contains out "2");
  Alcotest.(check bool) "sum 3" true (contains out "3")

let test_execute_update_delete () =
  let e = engine () in
  ignore (run e "CREATE TABLE t (name TEXT, qty INT)");
  ignore (run e "INSERT INTO t VALUES ('a', 1)");
  ignore (run e "INSERT INTO t VALUES ('b', 2)");
  Alcotest.(check string) "update count" "1 rows updated"
    (run e "UPDATE t SET qty = 9 WHERE name = 'a'");
  let out = run e "SELECT * FROM t WHERE name = 'a'" in
  Alcotest.(check bool) "updated value" true (contains out "9");
  Alcotest.(check string) "delete count" "1 rows deleted"
    (run e "DELETE FROM t WHERE qty = 2");
  let out = run e "SELECT COUNT(*) FROM t" in
  Alcotest.(check bool) "one row left" true (contains out "1")

let test_execute_merge_and_tables () =
  let e = engine () in
  ignore (run e "CREATE TABLE t (k INT INDEXED)");
  ignore (run e "INSERT INTO t VALUES (1)");
  let out = run e "MERGE t" in
  Alcotest.(check bool) "merge reports rows" true (contains out "1 rows -> 1");
  let out = run e "TABLES" in
  Alcotest.(check bool) "tables lists t" true (contains out "t");
  Alcotest.(check bool) "main rows shown" true (contains out "1 main")

let test_execute_survives_crash () =
  let e = engine () in
  ignore (run e "CREATE TABLE t (k INT INDEXED, v TEXT)");
  ignore (run e "INSERT INTO t VALUES (1, 'persisted')");
  let e2, _ = E.recover (E.crash e Nvm.Region.Drop_unfenced) in
  let out = run e2 "SELECT * FROM t WHERE k = 1" in
  Alcotest.(check bool) "data survived" true (contains out "persisted")

let test_execute_aggregate_group_by () =
  let e = engine () in
  ignore (run e "CREATE TABLE s (city TEXT, pop INT)");
  ignore (run e "INSERT INTO s VALUES ('x', 10)");
  ignore (run e "INSERT INTO s VALUES ('x', 20)");
  ignore (run e "INSERT INTO s VALUES ('y', 5)");
  let out = run e "SELECT SUM(pop) FROM s GROUP BY city" in
  Alcotest.(check bool) "x group" true (contains out "30");
  Alcotest.(check bool) "y group" true (contains out "5")

let test_help_and_stats () =
  let e = engine () in
  Alcotest.(check bool) "help mentions CREATE" true
    (contains (run e "HELP") "CREATE TABLE");
  Alcotest.(check bool) "stats mentions CID" true (contains (run e "STATS") "CID")

let () =
  Alcotest.run "repl"
    [
      ( "parse",
        [
          Alcotest.test_case "create" `Quick test_parse_create;
          Alcotest.test_case "case insensitive" `Quick test_parse_case_insensitive;
          Alcotest.test_case "string escapes" `Quick test_parse_string_escapes;
          Alcotest.test_case "where forms" `Quick test_parse_where_forms;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "star+aggregate rejected" `Quick
            test_star_aggregate_mix_rejected;
        ] );
      ( "execute",
        [
          Alcotest.test_case "roundtrip" `Quick test_execute_roundtrip;
          Alcotest.test_case "update/delete" `Quick test_execute_update_delete;
          Alcotest.test_case "merge/tables" `Quick test_execute_merge_and_tables;
          Alcotest.test_case "survives crash" `Quick test_execute_survives_crash;
          Alcotest.test_case "group by" `Quick test_execute_aggregate_group_by;
          Alcotest.test_case "help/stats" `Quick test_help_and_stats;
        ] );
    ]
