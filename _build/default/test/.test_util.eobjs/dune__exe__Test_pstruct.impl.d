test/test_pstruct.ml: Alcotest Array Gen Hashtbl Int64 List Nvm Nvm_alloc Printf Pstruct QCheck QCheck_alcotest Set String Util
