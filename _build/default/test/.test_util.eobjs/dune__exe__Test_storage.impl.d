test/test_storage.ml: Alcotest Fmt Gen Int64 List Nvm Nvm_alloc Printf QCheck QCheck_alcotest Storage
