test/test_edge.ml: Alcotest Array Char Core Int64 List Nvm Nvm_alloc Printf Storage String Util
