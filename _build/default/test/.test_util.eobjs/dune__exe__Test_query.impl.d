test/test_query.ml: Alcotest Array Char Core Gen List Printf QCheck QCheck_alcotest Query Storage String Util
