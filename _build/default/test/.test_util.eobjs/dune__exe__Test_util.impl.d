test/test_util.ml: Alcotest Array Fun Gen Histogram List Prng QCheck QCheck_alcotest String Tabular Util
