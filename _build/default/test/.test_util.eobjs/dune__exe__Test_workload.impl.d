test/test_workload.ml: Alcotest Array Core Hashtbl List Nvm Storage Util Workload
