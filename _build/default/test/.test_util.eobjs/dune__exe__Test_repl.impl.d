test/test_repl.ml: Alcotest Array Core List Nvm Printf Query Repl Storage String
