test/test_nvm.ml: Alcotest Array Bytes Char Filename Fun Gen Int64 List Nvm Printf QCheck QCheck_alcotest String Sys Util
