test/test_txn.ml: Alcotest Array Gen List Nvm Nvm_alloc QCheck QCheck_alcotest Storage Txn
