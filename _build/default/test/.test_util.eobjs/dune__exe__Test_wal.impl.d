test/test_wal.ml: Alcotest Array Buffer Bytes Filename Int64 List QCheck QCheck_alcotest Storage String Sys Unix Wal
