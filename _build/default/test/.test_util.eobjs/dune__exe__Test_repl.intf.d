test/test_repl.mli:
