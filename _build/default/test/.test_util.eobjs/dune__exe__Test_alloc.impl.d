test/test_alloc.ml: Alcotest Int64 List Nvm Nvm_alloc Option QCheck QCheck_alcotest String Util
