test/test_engine.ml: Alcotest Array Core Filename Fmt Gen Int64 List Nvm Printf QCheck QCheck_alcotest Storage Sys Txn Util Wal Workload
