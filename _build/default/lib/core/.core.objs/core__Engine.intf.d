lib/core/engine.mli: Nvm Nvm_alloc Query Storage Txn Wal
