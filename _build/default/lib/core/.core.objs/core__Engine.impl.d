lib/core/engine.ml: Array Hashtbl Int64 List Logs Nvm Nvm_alloc Option Printf Query Storage Txn Unix Wal
