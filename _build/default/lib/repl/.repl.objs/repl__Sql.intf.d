lib/repl/sql.mli: Core Query Storage
