lib/repl/sql.ml: Array Buffer Core List Nvm Printf Query Storage String Util
