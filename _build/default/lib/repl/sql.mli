(** A small SQL dialect for the interactive demo (the ICDE demo paper's
    front end, in terminal form).

    Statements:
    {v
    CREATE TABLE t (name TEXT INDEXED, qty INT, price FLOAT)
    INSERT INTO t VALUES ('widget', 3, 9.99)
    SELECT * FROM t WHERE qty >= 2 AND name = 'widget' LIMIT 10
    SELECT COUNT( * ), SUM(qty), AVG(price) FROM t GROUP BY name
    UPDATE t SET qty = 4 WHERE name = 'widget'
    DELETE FROM t WHERE qty < 1
    MERGE t          -- fold the delta into a new main generation
    CHECKPOINT       -- merge everything (and dump, under log durability)
    TABLES | STATS | HELP
    v}

    Keywords are case-insensitive; strings are single-quoted with ['']
    escaping; each statement runs in its own auto-committed transaction. *)

type projection = Star | Agg of Query.Aggregate.spec

type stmt =
  | Create_table of { table : string; schema : Storage.Schema.t }
  | Insert of { table : string; values : Storage.Value.t array }
  | Select of {
      table : string;
      projections : projection list;
      where : (string * Query.Predicate.t) list;
      group_by : string option;
      limit : int option;
    }
  | Update of {
      table : string;
      sets : (string * Storage.Value.t) list;
      where : (string * Query.Predicate.t) list;
    }
  | Delete of { table : string; where : (string * Query.Predicate.t) list }
  | Merge of string
  | Checkpoint
  | Tables
  | Stats
  | Help

exception Parse_error of string

val parse : string -> stmt
(** Raises {!Parse_error} with a human-readable message. *)

val execute : Core.Engine.t -> stmt -> string
(** Run one statement (auto-commit) and render its result as text.
    Write conflicts and engine errors surface as the result string. *)

val help_text : string
