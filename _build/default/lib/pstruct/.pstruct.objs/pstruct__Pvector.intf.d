lib/pstruct/pvector.mli: Nvm_alloc
