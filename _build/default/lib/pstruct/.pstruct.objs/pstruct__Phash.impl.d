lib/pstruct/phash.ml: Int64 Nvm Nvm_alloc
