lib/pstruct/pbitvec.ml: Array Bytes Int64 Nvm Nvm_alloc Printf
