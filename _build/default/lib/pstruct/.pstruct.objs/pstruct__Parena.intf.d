lib/pstruct/parena.mli: Nvm_alloc
