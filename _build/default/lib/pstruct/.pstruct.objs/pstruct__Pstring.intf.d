lib/pstruct/pstring.mli: Nvm_alloc
