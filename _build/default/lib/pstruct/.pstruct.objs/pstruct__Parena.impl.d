lib/pstruct/parena.ml: Int64 List Nvm Nvm_alloc Pvector String
