lib/pstruct/pbitvec.mli: Nvm_alloc
