lib/pstruct/pbtree.mli: Nvm_alloc
