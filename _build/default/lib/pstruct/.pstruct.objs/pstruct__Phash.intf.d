lib/pstruct/phash.mli: Nvm_alloc
