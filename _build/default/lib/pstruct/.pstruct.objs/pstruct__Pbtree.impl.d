lib/pstruct/pbtree.ml: Int64 List Map Nvm Nvm_alloc Option Pvector
