lib/pstruct/pvector.ml: Int64 Nvm Nvm_alloc Printf
