lib/pstruct/pstring.ml: Nvm Nvm_alloc String
