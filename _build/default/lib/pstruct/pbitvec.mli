(** Read-only bit-packed integer vector.

    Main-partition attribute vectors store one dictionary value-id per row
    using exactly [ceil(log2 |dict|)] bits — Hyrise's main-side
    compression. The vector is built in one shot by the merge process,
    persisted wholesale, and never mutated, so its crash story is simply
    "publish the offset after persisting the block". *)

type t

val build : Nvm_alloc.Allocator.t -> int array -> t
(** Pack the (non-negative) values with the minimal uniform bit width.
    The block is durable and activated on return; linking it into a parent
    is the caller's job (via [handle]). *)

val attach : Nvm_alloc.Allocator.t -> int -> t

val handle : t -> int

val length : t -> int

val bits : t -> int
(** Bits per entry (0 when the vector is empty or all-zero). *)

val get : t -> int -> int

val to_array : t -> int array

val destroy : t -> unit

val owned_blocks : t -> int list

val bytes_on_nvm : t -> int
