module A = Nvm_alloc.Allocator
module Region = Nvm.Region

(* Layout: +0 length, +8 bytes. *)

let add alloc s =
  let region = A.region alloc in
  let off = A.alloc alloc (8 + String.length s) in
  Region.set_int region off (String.length s);
  Region.write_string region (off + 8) s;
  Region.persist region off (8 + String.length s);
  A.activate alloc off;
  off

let length_at alloc off = Region.get_int (A.region alloc) off

let get alloc off =
  Region.read_string (A.region alloc) (off + 8) (length_at alloc off)

let free alloc off = A.free alloc off

let bytes_on_nvm s = 8 + String.length s
