(** Persistent immutable strings.

    Dictionary-encoded text columns store each distinct string once on NVM
    and refer to it by offset. Strings are immutable and — the store being
    insert-only — live until the enclosing structure is destroyed, so no
    individual reclamation is needed between merges. *)

val add : Nvm_alloc.Allocator.t -> string -> int
(** Persist a string; returns its stable offset. The string is fully
    durable (and its block activated) on return. *)

val get : Nvm_alloc.Allocator.t -> int -> string
(** Read back a string written by [add]. *)

val length_at : Nvm_alloc.Allocator.t -> int -> int
(** Length without copying the payload. *)

val free : Nvm_alloc.Allocator.t -> int -> unit
(** Release the string's block (used when whole partitions are dropped). *)

val bytes_on_nvm : string -> int
(** Footprint a string of this content will occupy, for size accounting. *)
