module Table = Storage.Table
module Schema = Storage.Schema
module Mvcc = Txn.Mvcc

type filter = { col : string; pred : Predicate.t }

let run txn table ~filters f =
  let alloc = Table.allocator table in
  let cols =
    List.map
      (fun { col; pred } -> (Schema.find_column (Table.schema table) col, pred))
      filters
  in
  let main_compiled =
    List.map
      (fun (ci, pred) -> (ci, Predicate.compile_main alloc table ~col:ci pred))
      cols
  in
  let delta_compiled =
    List.map
      (fun (ci, pred) -> (ci, Predicate.compile_delta alloc table ~col:ci pred))
      cols
  in
  let main_rows = Table.main_rows table in
  for r = 0 to main_rows - 1 do
    if
      List.for_all
        (fun (ci, c) -> Predicate.matches c (Table.main_vid table ci r))
        main_compiled
      && Mvcc.row_visible txn table r
    then f r
  done;
  for p = 0 to Table.delta_rows table - 1 do
    if
      List.for_all
        (fun (ci, c) -> Predicate.matches c (Table.delta_vid table ci p))
        delta_compiled
      && Mvcc.row_visible txn table (main_rows + p)
    then f (main_rows + p)
  done

let select txn table ~filters =
  let acc = ref [] in
  run txn table ~filters (fun r -> acc := (r, Table.get_row table r) :: !acc);
  List.rev !acc

let count txn table ~filters =
  let n = ref 0 in
  run txn table ~filters (fun _ -> incr n);
  !n
