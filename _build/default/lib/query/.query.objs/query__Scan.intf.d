lib/query/scan.mli: Predicate Storage Txn
