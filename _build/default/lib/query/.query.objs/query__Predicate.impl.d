lib/query/predicate.ml: Hashtbl List Storage
