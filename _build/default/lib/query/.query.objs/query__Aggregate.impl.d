lib/query/aggregate.ml: Array Float Hashtbl List Option Printf Scan Storage
