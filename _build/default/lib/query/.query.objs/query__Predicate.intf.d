lib/query/predicate.mli: Hashtbl Nvm_alloc Storage
