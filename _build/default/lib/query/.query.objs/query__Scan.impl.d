lib/query/scan.ml: List Predicate Storage Txn
