lib/query/aggregate.mli: Scan Storage Txn
