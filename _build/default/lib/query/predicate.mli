(** Column predicates and their dictionary-space compilation.

    A column-store's scan advantage comes from evaluating predicates on
    {e value-ids} instead of decoded values: for the sorted main
    dictionary, a range predicate compiles to a value-id interval (two
    binary searches), after which the bit-packed attribute vector is
    filtered with integer comparisons only; for the unsorted delta
    dictionary, the predicate is evaluated once per {e distinct} value to
    produce a value-id set. This module implements that compilation. *)

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Cmp of comparison * Storage.Value.t
  | Between of Storage.Value.t * Storage.Value.t  (** inclusive bounds *)
  | In of Storage.Value.t list
  | Any  (** always true *)

val eval : t -> Storage.Value.t -> bool
(** Reference semantics on decoded values. *)

(** Compiled form for one table partition: either a value-id interval
    (main: contiguous because the dictionary is sorted), an explicit
    value-id set (delta), or a fallback that decodes. *)
type compiled =
  | Vid_range of int * int  (** inclusive; empty when lo > hi *)
  | Vid_set of (int, unit) Hashtbl.t
  | Vid_complement of (int, unit) Hashtbl.t
      (** all value-ids NOT in the set (for [Ne]) *)
  | Nothing
  | Everything

val compile_main :
  Nvm_alloc.Allocator.t -> Storage.Table.t -> col:int -> t -> compiled
(** Compile against the sorted main dictionary (binary searches). *)

val compile_delta :
  Nvm_alloc.Allocator.t -> Storage.Table.t -> col:int -> t -> compiled
(** Compile against the unsorted delta dictionary (one evaluation per
    distinct value). *)

val matches : compiled -> int -> bool
(** [matches c vid] — the per-row test, integer-only. *)
