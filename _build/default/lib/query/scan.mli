(** Filtered table scans in value-id space.

    A scan compiles every filter once per partition ({!Predicate}), then
    streams the attribute vectors: bit-packed integer reads on the main,
    plain integer reads on the delta — values are decoded only for rows
    that pass every filter and the MVCC visibility test. *)

type filter = { col : string; pred : Predicate.t }

val run :
  Txn.Mvcc.txn ->
  Storage.Table.t ->
  filters:filter list ->
  (int -> unit) ->
  unit
(** Invoke the callback with every visible, matching physical row id, in
    row order. *)

val select :
  Txn.Mvcc.txn ->
  Storage.Table.t ->
  filters:filter list ->
  (int * Storage.Value.t array) list
(** Materialized variant. *)

val count : Txn.Mvcc.txn -> Storage.Table.t -> filters:filter list -> int
