module Value = Storage.Value
module Table = Storage.Table

type comparison = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Cmp of comparison * Value.t
  | Between of Value.t * Value.t
  | In of Value.t list
  | Any

let eval p v =
  match p with
  | Any -> true
  | Cmp (op, w) -> (
      let c = Value.compare v w in
      match op with
      | Eq -> c = 0
      | Ne -> c <> 0
      | Lt -> c < 0
      | Le -> c <= 0
      | Gt -> c > 0
      | Ge -> c >= 0)
  | Between (a, b) -> Value.compare v a >= 0 && Value.compare v b <= 0
  | In vs -> List.exists (Value.equal v) vs

type compiled =
  | Vid_range of int * int
  | Vid_set of (int, unit) Hashtbl.t
  | Vid_complement of (int, unit) Hashtbl.t
  | Nothing
  | Everything

let matches c vid =
  match c with
  | Vid_range (lo, hi) -> vid >= lo && vid <= hi
  | Vid_set s -> Hashtbl.mem s vid
  | Vid_complement s -> not (Hashtbl.mem s vid)
  | Nothing -> false
  | Everything -> true

(* first index whose dictionary value is >= v (lower bound), and first
   index whose value is > v (upper bound), on the sorted main dict *)
let bounds table ~col v =
  let n = Table.main_dictionary_size table col in
  let rec search pred lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if pred (Table.main_dict_value table col mid) then search pred lo mid
      else search pred (mid + 1) hi
  in
  let lb = search (fun d -> Value.compare d v >= 0) 0 n in
  let ub = search (fun d -> Value.compare d v > 0) 0 n in
  (lb, ub)

let norm_range lo hi = if lo > hi then Nothing else Vid_range (lo, hi)

let compile_main _alloc table ~col p =
  let n = Table.main_dictionary_size table col in
  if n = 0 then match p with Any -> Everything | _ -> Nothing
  else
    match p with
    | Any -> Everything
    | Cmp (Eq, v) ->
        let lb, ub = bounds table ~col v in
        if lb < ub then Vid_range (lb, lb) else Nothing
    | Cmp (Ne, v) ->
        let lb, ub = bounds table ~col v in
        if lb < ub then begin
          let s = Hashtbl.create 1 in
          Hashtbl.replace s lb ();
          Vid_complement s
        end
        else Everything
    | Cmp (Lt, v) ->
        let lb, _ = bounds table ~col v in
        norm_range 0 (lb - 1)
    | Cmp (Le, v) ->
        let _, ub = bounds table ~col v in
        norm_range 0 (ub - 1)
    | Cmp (Gt, v) ->
        let _, ub = bounds table ~col v in
        norm_range ub (n - 1)
    | Cmp (Ge, v) ->
        let lb, _ = bounds table ~col v in
        norm_range lb (n - 1)
    | Between (a, b) ->
        let lb, _ = bounds table ~col a in
        let _, ub = bounds table ~col b in
        norm_range lb (ub - 1)
    | In vs ->
        let s = Hashtbl.create (List.length vs) in
        List.iter
          (fun v ->
            let lb, ub = bounds table ~col v in
            if lb < ub then Hashtbl.replace s lb ())
          vs;
        if Hashtbl.length s = 0 then Nothing else Vid_set s

let compile_delta _alloc table ~col p =
  match p with
  | Any -> Everything
  | _ ->
      let n = Table.delta_dictionary_size table col in
      let s = Hashtbl.create 16 in
      for vid = 0 to n - 1 do
        if eval p (Table.delta_dict_value table col vid) then
          Hashtbl.replace s vid ()
      done;
      if Hashtbl.length s = 0 then Nothing else Vid_set s
