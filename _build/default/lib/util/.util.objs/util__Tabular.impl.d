lib/util/tabular.ml: Buffer List Printf String
