lib/util/tabular.mli:
