lib/util/prng.mli:
