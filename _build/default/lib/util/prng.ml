type t = { mutable state : int64 }

let create seed = { state = seed }

let copy t = { state = t.state }

(* splitmix64 (Steele, Lea, Flood 2014): a tiny, high-quality, splittable
   generator.  The mixing constants are the published ones. *)
let next_int64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let int_in t lo hi =
  assert (lo <= hi);
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next_int64 t) 1L = 1L

let float t bound =
  let mantissa = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float mantissa /. 9007199254740992.0 *. bound

let chance t p =
  if p <= 0.0 then false else if p >= 1.0 then true else float t 1.0 < p

let pick t a =
  assert (Array.length a > 0);
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let alpha_string t n = String.init n (fun _ -> Char.chr (Char.code 'a' + int t 26))

let split t = create (next_int64 t)

module Zipf = struct
  type gen = {
    n : int;
    theta : float;
    alpha : float;
    zetan : float;
    eta : float;
    zeta2 : float;
  }

  let zeta n theta =
    let sum = ref 0.0 in
    for i = 1 to n do
      sum := !sum +. (1.0 /. Float.pow (float_of_int i) theta)
    done;
    !sum

  let create ~n ~theta =
    assert (n > 0 && theta >= 0.0 && theta < 1.0);
    let zetan = zeta n theta in
    let zeta2 = zeta 2 theta in
    let alpha = 1.0 /. (1.0 -. theta) in
    let eta =
      (1.0 -. Float.pow (2.0 /. float_of_int n) (1.0 -. theta))
      /. (1.0 -. (zeta2 /. zetan))
    in
    { n; theta; alpha; zetan; eta; zeta2 = zeta2 }

  (* Gray et al. "Quickly generating billion-record synthetic databases",
     the generator used by YCSB. *)
  let draw g t =
    ignore g.zeta2;
    let u = float t 1.0 in
    let uz = u *. g.zetan in
    if uz < 1.0 then 0
    else if uz < 1.0 +. Float.pow 0.5 g.theta then 1
    else
      let v =
        float_of_int g.n
        *. Float.pow ((g.eta *. u) -. g.eta +. 1.0) g.alpha
      in
      let v = int_of_float v in
      if v >= g.n then g.n - 1 else if v < 0 then 0 else v
end
