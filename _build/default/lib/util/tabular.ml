type align = Left | Right

type row = Cells of string list | Separator

type t = {
  title : string;
  columns : (string * align) list;
  mutable rows : row list; (* reversed *)
}

let create ~title columns = { title; columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Tabular.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let rows = List.rev t.rows in
  let headers = List.map fst t.columns in
  let widths =
    List.mapi
      (fun i (h, _) ->
        let cell_width = function
          | Cells cells -> String.length (List.nth cells i)
          | Separator -> 0
        in
        List.fold_left
          (fun acc r -> max acc (cell_width r))
          (String.length h) rows)
      t.columns
  in
  let pad align width s =
    let n = width - String.length s in
    if n <= 0 then s
    else
      match align with
      | Left -> s ^ String.make n ' '
      | Right -> String.make n ' ' ^ s
  in
  let rule = List.map (fun w -> String.make w '-') widths in
  let line cells aligns =
    "| "
    ^ String.concat " | "
        (List.map2 (fun (w, a) c -> pad a w c) (List.combine widths aligns) cells)
    ^ " |"
  in
  let aligns = List.map snd t.columns in
  let buf = Buffer.create 256 in
  Buffer.add_string buf ("== " ^ t.title ^ " ==\n");
  Buffer.add_string buf (line headers (List.map (fun _ -> Left) aligns));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (line rule (List.map (fun _ -> Left) aligns));
  Buffer.add_char buf '\n';
  List.iter
    (fun r ->
      (match r with
      | Cells cells -> Buffer.add_string buf (line cells aligns)
      | Separator -> Buffer.add_string buf (line rule (List.map (fun _ -> Left) aligns)));
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let print t =
  print_string (render t);
  print_newline ()

let fmt_int n =
  let s = string_of_int (abs n) in
  let len = String.length s in
  let buf = Buffer.create (len + (len / 3) + 1) in
  if n < 0 then Buffer.add_char buf '-';
  String.iteri
    (fun i c ->
      if i > 0 && (len - i) mod 3 = 0 then Buffer.add_char buf ',';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_float ?(decimals = 2) f = Printf.sprintf "%.*f" decimals f

let fmt_bytes n =
  let f = float_of_int n in
  if f >= 1073741824.0 then Printf.sprintf "%.2f GiB" (f /. 1073741824.0)
  else if f >= 1048576.0 then Printf.sprintf "%.2f MiB" (f /. 1048576.0)
  else if f >= 1024.0 then Printf.sprintf "%.2f KiB" (f /. 1024.0)
  else Printf.sprintf "%d B" n

let fmt_ns n =
  let f = float_of_int n in
  if f >= 1e9 then Printf.sprintf "%.2f s" (f /. 1e9)
  else if f >= 1e6 then Printf.sprintf "%.2f ms" (f /. 1e6)
  else if f >= 1e3 then Printf.sprintf "%.2f us" (f /. 1e3)
  else Printf.sprintf "%d ns" n
