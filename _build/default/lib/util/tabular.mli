(** Fixed-width text tables for benchmark output.

    The benchmark harness prints one table per reproduced paper artifact;
    this module renders them with right-aligned numeric columns so the
    output can be diffed across runs. *)

type align = Left | Right

type t

val create : title:string -> (string * align) list -> t
(** [create ~title columns] starts a table with the given header. *)

val add_row : t -> string list -> unit
(** Append a row. The row must have exactly as many cells as columns. *)

val add_separator : t -> unit
(** Insert a horizontal rule between rows. *)

val render : t -> string
(** Render the whole table, including title and rules. *)

val print : t -> unit
(** [render] to stdout followed by a blank line. *)

(** Cell formatting helpers. *)

val fmt_int : int -> string
(** Thousands-separated integer, e.g. [1_234_567] -> ["1,234,567"]. *)

val fmt_float : ?decimals:int -> float -> string

val fmt_bytes : int -> string
(** Human-readable byte count, e.g. ["12.5 MiB"]. *)

val fmt_ns : int -> string
(** Human-readable duration from nanoseconds, e.g. ["3.2 ms"]. *)
