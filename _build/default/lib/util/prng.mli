(** Deterministic pseudo-random number generation.

    All randomized components of the reproduction (workload generators,
    crash-point fuzzing, adversarial persistence) draw from this splitmix64
    generator so that every experiment is reproducible from a single seed. *)

type t
(** Mutable generator state. *)

val create : int64 -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** [copy t] is an independent generator that will produce the same stream
    as [t] from this point on. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. Requires [bound > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    Requires [lo <= hi]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is [true] with probability [p] (clamped to [\[0,1\]]). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val alpha_string : t -> int -> string
(** [alpha_string t n] is a random lowercase ASCII string of length [n]. *)

val split : t -> t
(** [split t] derives an independent generator, advancing [t]. Used to give
    each component of an experiment its own stream. *)

module Zipf : sig
  type gen
  (** Zipfian distribution over [\[0, n)], used by the YCSB-style workload. *)

  val create : n:int -> theta:float -> gen
  (** Standard YCSB zipfian with skew [theta] (e.g. 0.99). Requires
      [n > 0] and [0 <= theta < 1]. *)

  val draw : gen -> t -> int
end
