lib/nvm/region.ml: Bytes Char Digest Fun Hashtbl Int64 List Printf Util
