lib/nvm/region.mli: Util
