lib/nvm_alloc/allocator.mli: Nvm
