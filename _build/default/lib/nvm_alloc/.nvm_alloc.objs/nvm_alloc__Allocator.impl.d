lib/nvm_alloc/allocator.ml: Array Hashtbl Int64 List Nvm Printf
