lib/storage/merge.ml: Array Cid Hashtbl List Map Nvm_alloc Pstruct Schema Table Value
