lib/storage/value.mli: Nvm_alloc
