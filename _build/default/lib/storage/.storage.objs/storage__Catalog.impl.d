lib/storage/catalog.ml: Int64 List Nvm Nvm_alloc Option Pstruct
