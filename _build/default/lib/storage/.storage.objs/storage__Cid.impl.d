lib/storage/cid.ml: Format Int64
