lib/storage/catalog.mli: Nvm_alloc
