lib/storage/table.ml: Array Cid Int Int64 List Nvm Nvm_alloc Printf Pstruct Schema Value
