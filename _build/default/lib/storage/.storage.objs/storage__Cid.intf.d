lib/storage/cid.mli: Format
