lib/storage/schema.ml: Array Format Printf Value
