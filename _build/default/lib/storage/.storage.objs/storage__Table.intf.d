lib/storage/table.mli: Cid Nvm_alloc Schema Value
