lib/storage/value.ml: Char Float Int Int64 Printf Pstruct String
