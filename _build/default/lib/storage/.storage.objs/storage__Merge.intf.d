lib/storage/merge.mli: Cid Nvm_alloc Table
