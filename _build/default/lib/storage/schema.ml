type column = { name : string; ty : Value.ty; indexed : bool }

type t = column array

let column ?(indexed = false) name ty = { name; ty; indexed }

let arity = Array.length

let find_column t name =
  let rec go i =
    if i >= Array.length t then raise Not_found
    else if t.(i).name = name then i
    else go (i + 1)
  in
  go 0

let validate_row t row =
  if Array.length row <> Array.length t then
    invalid_arg
      (Printf.sprintf "Schema.validate_row: arity %d, expected %d"
         (Array.length row) (Array.length t));
  Array.iteri
    (fun i v ->
      if Value.ty_of v <> t.(i).ty then
        invalid_arg
          (Printf.sprintf "Schema.validate_row: column %s expects %s, got %s"
             t.(i).name
             (Value.ty_to_string t.(i).ty)
             (Value.ty_to_string (Value.ty_of v))))
    row

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf c ->
         Format.fprintf ppf "%s %s%s" c.name (Value.ty_to_string c.ty)
           (if c.indexed then " indexed" else "")))
    (Array.to_list t)
