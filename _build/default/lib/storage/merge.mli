(** Delta→main merge.

    Folds a table's delta partition into a new read-optimized main: dead
    row versions are compacted away, per-column dictionaries are rebuilt
    sorted, attribute vectors are re-encoded bit-packed. The new table
    generation is built completely on the side and only becomes the table
    via the caller's single-word catalog swap — the online merge of Hyrise
    applied to NVM, where "swap and persist one pointer" is the whole
    publication.

    Must run with no active transactions (Hyrise-NV quiesces the merge the
    same way); the caller asserts this. *)

type stats = {
  rows_in : int;  (** physical rows before (main + delta, incl. dead) *)
  rows_out : int;  (** surviving rows in the new main *)
  dict_entries_out : int;  (** total new dictionary entries *)
  bytes_before : int;
  bytes_after : int;
}

val run :
  Nvm_alloc.Allocator.t ->
  Table.t ->
  merge_cid:Cid.t ->
  Table.t * stats * (unit -> unit)
(** [run alloc table ~merge_cid] builds the merged generation, keeping
    rows visible at [merge_cid]. Returns the new (durable) table, stats,
    and a [finalize] thunk that frees the old generation's structures and
    strings — call it only {e after} the catalog swap is durable; a crash
    before [finalize] merely leaks the old generation. *)
