type ty = Int_t | Float_t | Text_t

type t = Int of int | Float of float | Text of string

let ty_of = function Int _ -> Int_t | Float _ -> Float_t | Text _ -> Text_t

let ty_to_string = function
  | Int_t -> "int"
  | Float_t -> "float"
  | Text_t -> "text"

let ty_of_string = function
  | "int" -> Int_t
  | "float" -> Float_t
  | "text" -> Text_t
  | s -> invalid_arg ("Value.ty_of_string: " ^ s)

let ty_tag = function Int_t -> 0 | Float_t -> 1 | Text_t -> 2

let ty_of_tag = function
  | 0 -> Int_t
  | 1 -> Float_t
  | 2 -> Text_t
  | n -> invalid_arg (Printf.sprintf "Value.ty_of_tag: %d" n)

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Text x, Text y -> String.compare x y
  | _ -> Int.compare (ty_tag (ty_of a)) (ty_tag (ty_of b))

let equal a b = compare a b = 0

let to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | Text s -> s

let encode_with ~add_string = function
  | Int i -> Int64.of_int i
  | Float f -> Int64.bits_of_float f
  | Text s -> Int64.of_int (add_string s)

let encode alloc v = encode_with ~add_string:(Pstruct.Pstring.add alloc) v

let decode alloc ty w =
  match ty with
  | Int_t -> Int (Int64.to_int w)
  | Float_t -> Float (Int64.float_of_bits w)
  | Text_t -> Text (Pstruct.Pstring.get alloc (Int64.to_int w))

let fnv1a_64 s =
  let h = ref 0xCBF29CE484222325L in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h 0x100000001B3L)
    s;
  !h

let dict_key = function
  | Int i -> Int64.of_int i
  | Float f -> Int64.bits_of_float f
  | Text s -> fnv1a_64 s

let compare_encoded alloc ty w1 w2 =
  match ty with
  | Int_t -> Int.compare (Int64.to_int w1) (Int64.to_int w2)
  | Float_t -> Float.compare (Int64.float_of_bits w1) (Int64.float_of_bits w2)
  | Text_t ->
      String.compare
        (Pstruct.Pstring.get alloc (Int64.to_int w1))
        (Pstruct.Pstring.get alloc (Int64.to_int w2))
