(** Column values and their 64-bit persistent encoding.

    Hyrise columns are dictionary-encoded: the data structures store
    {e value-ids}; the dictionaries store encoded values. Every value is
    encoded into one 64-bit word — integers directly, floats as their IEEE
    bits, strings as the offset of a persistent string ([Pstruct.Pstring]).
    Comparison is always by decoded semantics, not by raw word. *)

type ty = Int_t | Float_t | Text_t

type t = Int of int | Float of float | Text of string

val ty_of : t -> ty

val ty_to_string : ty -> string
val ty_of_string : string -> ty
(** Raises [Invalid_argument] on unknown names. Used by the catalog. *)

val ty_tag : ty -> int
val ty_of_tag : int -> ty

val compare : t -> t -> int
(** Semantic comparison; values of different types order by type tag (the
    engine's type checker should prevent mixing, but the order is total). *)

val equal : t -> t -> bool

val to_string : t -> string
(** Display form, e.g. for CLI output. *)

val encode : Nvm_alloc.Allocator.t -> t -> int64
(** Encode for storage in a dictionary. Strings are persisted into the
    allocator's heap; the returned word is stable across restarts. *)

val encode_with : add_string:(string -> int) -> t -> int64
(** Like [encode], but strings go through the given persister (e.g. a
    table generation's {!Pstruct.Parena}). The produced offsets must obey
    {!Pstruct.Pstring}'s [len][bytes] layout, which the arena does. *)

val decode : Nvm_alloc.Allocator.t -> ty -> int64 -> t

val compare_encoded : Nvm_alloc.Allocator.t -> ty -> int64 -> int64 -> int
(** Semantic comparison of two encoded words without materializing
    integers/floats (strings are read from the heap). *)

val dict_key : t -> int64
(** 64-bit lookup key for dictionary indexes: the value itself for
    integers, the IEEE bits for floats, an FNV-1a hash for strings.
    Equal values always have equal keys; for strings distinct values may
    collide, so index hits must be verified against the dictionary. *)
