(** Table schemas. *)

type column = {
  name : string;
  ty : Value.ty;
  indexed : bool;
      (** maintain a persistent secondary index on the delta partition *)
}

type t = column array

val column : ?indexed:bool -> string -> Value.ty -> column

val arity : t -> int

val find_column : t -> string -> int
(** Position of a column by name. Raises [Not_found]. *)

val validate_row : t -> Value.t array -> unit
(** Raises [Invalid_argument] if the arity or a value type mismatches. *)

val pp : Format.formatter -> t -> unit
