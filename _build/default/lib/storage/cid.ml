type t = int64

let zero = 0L
let infinity = Int64.max_int
let next = Int64.succ

let visible ~begin_cid ~end_cid ~snapshot =
  Int64.compare begin_cid snapshot <= 0 && Int64.compare snapshot end_cid < 0

let pp ppf t =
  if t = infinity then Format.fprintf ppf "inf" else Format.fprintf ppf "%Ld" t
