(** Commit identifiers and their sentinel values.

    A CID is a monotonically increasing commit timestamp. Every physical
    row carries a begin-CID and an end-CID; a row is visible to a snapshot
    [s] iff [begin <= s < end]. [infinity] plays both the "not yet
    committed" role for begin-CIDs (never visible) and the "not
    invalidated" role for end-CIDs (visible forever). *)

type t = int64

val zero : t
(** The CID of the initial, empty database state. *)

val infinity : t
(** Sentinel: uncommitted (as a begin-CID) / live (as an end-CID). *)

val next : t -> t

val visible : begin_cid:t -> end_cid:t -> snapshot:t -> bool
(** The MVCC visibility predicate. *)

val pp : Format.formatter -> t -> unit
