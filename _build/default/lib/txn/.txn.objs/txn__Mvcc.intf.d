lib/txn/mvcc.mli: Storage
