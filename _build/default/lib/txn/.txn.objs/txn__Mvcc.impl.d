lib/txn/mvcc.ml: Hashtbl List Printf Storage
