(** YCSB-style key-value workload over a single wide table.

    Used by the recovery experiments (E1/T1): bulk-load a parameterizable
    number of rows, then run a read/update/insert mix with zipfian key
    selection. The row payload width is configurable so dataset size can
    be scaled independently of row count. *)

type t

type config = {
  rows : int;  (** initial load *)
  field_length : int;  (** bytes per text field *)
  fields : int;  (** text fields per row *)
  read_pct : int;
  update_pct : int;  (** rest: inserts *)
  zipf_theta : float;  (** 0.0 = uniform *)
}

val default_config : config
(** 10k rows, 4 fields x 64 bytes, 50/40/10 read/update/insert,
    theta 0.99. *)

val table_name : string

val setup : Core.Engine.t -> Util.Prng.t -> config -> t
(** Create and bulk-load the table (batched transactions). *)

val attach : Core.Engine.t -> config -> t
(** Re-bind to a recovered engine (recomputes the key counter). *)

val engine : t -> Core.Engine.t

type stats = { reads : int; updates : int; inserts : int; aborted : int }

val run : t -> Util.Prng.t -> ops:int -> stats

val run_one : t -> Util.Prng.t -> bool

val row_count : t -> int

val checksum : t -> int
(** Order-insensitive digest of the visible table contents; equal
    checksums before a crash and after recovery mean no committed data was
    lost or corrupted. *)
