lib/workload/tpcc_lite.mli: Core Util
