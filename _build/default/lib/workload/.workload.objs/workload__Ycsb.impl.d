lib/workload/ycsb.ml: Array Core Hashtbl Printf Storage Txn Util
