lib/workload/ycsb.mli: Core Util
