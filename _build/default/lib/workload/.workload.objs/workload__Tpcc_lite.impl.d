lib/workload/tpcc_lite.ml: Array Core Int64 List Printf Storage Txn Unix Util
