lib/wal/codec.mli: Buffer Storage
