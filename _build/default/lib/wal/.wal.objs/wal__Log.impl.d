lib/wal/log.ml: Array Buffer Codec Filename Fun Int64 List Printf Storage String Sys Unix
