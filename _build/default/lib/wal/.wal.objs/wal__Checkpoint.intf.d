lib/wal/checkpoint.mli: Storage
