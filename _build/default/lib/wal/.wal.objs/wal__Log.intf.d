lib/wal/log.mli: Storage
