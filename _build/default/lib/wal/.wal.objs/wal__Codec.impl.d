lib/wal/codec.ml: Array Buffer Char Int32 Int64 Lazy Storage String
