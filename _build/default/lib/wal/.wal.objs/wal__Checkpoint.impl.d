lib/wal/checkpoint.ml: Array Buffer Codec Filename Fun Int64 List Storage String Sys Unix
