(* Quickstart: create an NVM-backed database, write some rows, pull the
   plug, and restart instantly.

     dune exec examples/quickstart.exe *)

module Engine = Core.Engine
module Schema = Storage.Schema
module Value = Storage.Value

let () =
  (* 1. an engine whose tables live entirely on (simulated) NVM *)
  let engine = Engine.create (Engine.default_config ~size:(8 * 1024 * 1024) Engine.Nvm) in

  (* 2. a table: dictionary-encoded columns, secondary index on [id] *)
  Engine.create_table engine ~name:"accounts"
    [|
      Schema.column ~indexed:true "id" Value.Int_t;
      Schema.column "owner" Value.Text_t;
      Schema.column "balance" Value.Int_t;
    |];

  (* 3. transactions: atomic, durable at commit *)
  Engine.with_txn engine (fun txn ->
      List.iter
        (fun (id, owner, balance) ->
          ignore
            (Engine.insert engine txn "accounts"
               [| Value.Int id; Value.Text owner; Value.Int balance |]))
        [ (1, "ada", 100); (2, "grace", 250); (3, "edsger", 40) ]);

  (* an update: MVCC creates a new version, the old one is invalidated *)
  Engine.with_txn engine (fun txn ->
      match Engine.lookup engine txn "accounts" ~col:"id" (Value.Int 2) with
      | (row, [| id; owner; Value.Int b |]) :: _ ->
          ignore
            (Engine.update engine txn "accounts" row
               [| id; owner; Value.Int (b + 50) |])
      | _ -> failwith "account 2 not found");

  (* a transaction that is still open when the power goes out *)
  let in_flight = Engine.begin_txn engine in
  ignore
    (Engine.insert engine in_flight "accounts"
       [| Value.Int 4; Value.Text "ghost"; Value.Int 9999 |]);

  Printf.printf "before crash: %d committed accounts, last CID %Ld\n"
    (Engine.with_txn engine (fun txn -> Engine.count engine txn "accounts"))
    (Engine.last_cid engine);

  (* 4. power failure: every CPU-cache-resident byte is gone *)
  let crashed = Engine.crash engine Nvm.Region.Drop_unfenced in

  (* 5. instant restart: re-open the heap, walk the catalog, roll back the
     in-flight transaction — no log replay, no size-dependent work *)
  let engine, stats = Engine.recover crashed in
  Printf.printf "recovered in %s\n" (Util.Tabular.fmt_ns stats.Engine.wall_ns);
  (match stats.Engine.detail with
  | Engine.Rv_nvm { heap_open_ns; attach_ns; rollback_ns; rolled_back_rows; _ } ->
      Printf.printf
        "  heap open %s | catalog+index attach %s | MVCC rollback %s (%d rows)\n"
        (Util.Tabular.fmt_ns heap_open_ns)
        (Util.Tabular.fmt_ns attach_ns)
        (Util.Tabular.fmt_ns rollback_ns)
        rolled_back_rows
  | _ -> ());

  Engine.with_txn engine (fun txn ->
      Printf.printf "after recovery: %d accounts (ghost rolled back)\n"
        (Engine.count engine txn "accounts");
      Engine.scan engine txn "accounts" (fun _ values ->
          match values with
          | [| Value.Int id; Value.Text owner; Value.Int balance |] ->
              Printf.printf "  account %d  %-8s balance %d\n" id owner balance
          | _ -> ()));

  (* 6. and the database keeps working *)
  Engine.with_txn engine (fun txn ->
      ignore
        (Engine.insert engine txn "accounts"
           [| Value.Int 5; Value.Text "barbara"; Value.Int 500 |]));
  Printf.printf "inserted one more; total now %d\n"
    (Engine.with_txn engine (fun txn -> Engine.count engine txn "accounts"))
