(* Analytics on live OLTP data: CH-benCHmark-style queries over the
   TPC-C-lite schema, using the dictionary-accelerated query layer —
   no ETL, same NVM-resident tables the transactions write.

     dune exec examples/analytics.exe *)

module Engine = Core.Engine
module Tpcc = Workload.Tpcc_lite
module Value = Storage.Value
module P = Query.Predicate
module Agg = Query.Aggregate
module Tabular = Util.Tabular

let () =
  let engine =
    Engine.create (Engine.default_config ~size:(64 * 1024 * 1024) Engine.Nvm)
  in
  let sess =
    Tpcc.setup engine ~warehouses:3 ~districts_per_wh:4 ~customers_per_district:10
  in
  print_endline "running 3000 OLTP transactions to generate data ...";
  ignore (Tpcc.run sess (Util.Prng.create 99L) ~ops:3000 ());
  (* a merge turns the accumulated delta into the compressed, scan-friendly
     main partition analytics likes *)
  ignore (Engine.merge engine "orders");
  ignore (Engine.merge engine "order_line");

  Engine.with_txn engine (fun txn ->
      (* Q1: order-amount distribution per district (group-by + sum) *)
      let q1 =
        Engine.aggregate engine txn "orders" ~group_by:"o_d_key"
          ~specs:[ Agg.Count; Agg.Sum "o_amount"; Agg.Avg "o_amount" ]
          ()
      in
      let t =
        Tabular.create ~title:"Q1: orders per district"
          [ ("district", Tabular.Right); ("orders", Tabular.Right);
            ("revenue", Tabular.Right); ("avg order", Tabular.Right) ]
      in
      List.iter
        (fun (k, cells) ->
          Tabular.add_row t
            [
              (match k with Some v -> Value.to_string v | None -> "?");
              Agg.cell_to_string cells.(0);
              Agg.cell_to_string cells.(1);
              Agg.cell_to_string cells.(2);
            ])
        q1.Agg.groups;
      Tabular.print t;

      (* Q2: large orders (predicate range scan on the packed main) *)
      let big = 60_000 in
      let n =
        Engine.count_where engine txn "orders"
          [ ("o_amount", P.Cmp (P.Gt, Value.Int big)) ]
      in
      Printf.printf "Q2: %d orders above %d\n\n" n big;

      (* Q3: top line items by value among large lines *)
      let q3 =
        Engine.aggregate engine txn "order_line"
          ~specs:[ Agg.Count; Agg.Sum "ol_amount"; Agg.Max "ol_amount" ]
          ~filters:[ ("ol_amount", P.Between (Value.Int 9000, Value.Int 9999)) ]
          ()
      in
      (match q3.Agg.groups with
      | [ (None, cells) ] ->
          Printf.printf
            "Q3: %s premium order lines, total value %s, largest %s\n\n"
            (Agg.cell_to_string cells.(0))
            (Agg.cell_to_string cells.(1))
            (Agg.cell_to_string cells.(2))
      | _ -> ());

      (* Q4: customer balance extremes (negative balances = heavy payers) *)
      let q4 =
        Engine.aggregate engine txn "customer"
          ~specs:[ Agg.Min "c_balance"; Agg.Max "c_balance"; Agg.Avg "c_balance" ]
          ()
      in
      match q4.Agg.groups with
      | [ (None, cells) ] ->
          Printf.printf "Q4: customer balance min %s / avg %s / max %s\n"
            (Agg.cell_to_string cells.(0))
            (Agg.cell_to_string cells.(2))
            (Agg.cell_to_string cells.(1))
      | _ -> ());

  (* the analytics above run under snapshot isolation: writers proceed *)
  ignore (Tpcc.run sess (Util.Prng.create 100L) ~ops:200 ());
  Printf.printf "...and OLTP kept running: %d orders total\n"
    (Tpcc.total_orders sess)
