(* Order processing: the interactive OLTP scenario that motivates
   Hyrise-NV — a TPC-C-style workload running with full durability on NVM,
   mixed with analytic queries, an online merge, and a crash in the middle
   of the day.

     dune exec examples/order_processing.exe *)

module Engine = Core.Engine
module Tpcc = Workload.Tpcc_lite
module Prng = Util.Prng

let now () = Unix.gettimeofday ()

let () =
  let engine =
    Engine.create (Engine.default_config ~size:(64 * 1024 * 1024) Engine.Nvm)
  in
  let warehouses = 4 and districts_per_wh = 5 and customers_per_district = 20 in
  print_endline "setting up warehouses/districts/customers ...";
  let sess =
    Tpcc.setup engine ~warehouses ~districts_per_wh ~customers_per_district
  in
  let rng = Prng.create 2024L in

  (* morning shift: 2000 transactions *)
  let t0 = now () in
  let stats = Tpcc.run sess rng ~ops:2000 () in
  let dt = now () -. t0 in
  Printf.printf
    "morning: %d committed (%d new-order / %d payment / %d status), %d aborted — %.0f txn/s\n"
    stats.Tpcc.committed stats.Tpcc.new_orders stats.Tpcc.payments
    stats.Tpcc.order_statuses stats.Tpcc.aborted
    (float_of_int stats.Tpcc.committed /. dt);

  (* analytics over the OLTP data, no ETL: district revenue report *)
  print_endline "revenue report:";
  for w = 1 to warehouses do
    let revenue = ref 0 in
    for d = 1 to districts_per_wh do
      revenue := !revenue + Tpcc.district_revenue sess ~w_id:w ~d_id:d
    done;
    Printf.printf "  warehouse %d: %d\n" w !revenue
  done;

  (* lunch break: merge the write-optimized deltas into read-optimized
     mains; dead row versions from the morning's updates are compacted *)
  List.iter
    (fun name ->
      let s = Engine.merge engine name in
      Printf.printf "merge %-11s %6d rows -> %6d   %s -> %s\n" name
        s.Storage.Merge.rows_in s.Storage.Merge.rows_out
        (Util.Tabular.fmt_bytes s.Storage.Merge.bytes_before)
        (Util.Tabular.fmt_bytes s.Storage.Merge.bytes_after))
    Tpcc.table_names;

  (* afternoon shift, abruptly ended by a power failure *)
  let stats = Tpcc.run sess rng ~ops:1000 () in
  Printf.printf "afternoon: %d committed before the outage\n" stats.Tpcc.committed;
  let orders_before = Tpcc.total_orders sess in
  let crashed = Engine.crash engine (Nvm.Region.Adversarial (Prng.create 13L)) in

  let engine, rstats = Engine.recover crashed in
  Printf.printf "power restored: recovered in %s\n"
    (Util.Tabular.fmt_ns rstats.Engine.wall_ns);
  let sess =
    Tpcc.attach engine ~warehouses ~districts_per_wh ~customers_per_district
  in
  Printf.printf "orders before outage %d, after recovery %d\n" orders_before
    (Tpcc.total_orders sess);
  List.iter
    (fun (name, ok) ->
      Printf.printf "  invariant %-40s %s\n" name (if ok then "OK" else "VIOLATED"))
    (Tpcc.consistency_check sess);

  (* evening shift proceeds as if nothing happened *)
  let stats = Tpcc.run sess rng ~ops:500 () in
  Printf.printf "evening: %d more committed; %d orders total\n"
    stats.Tpcc.committed (Tpcc.total_orders sess)
