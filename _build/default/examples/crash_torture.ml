(* Crash torture: a hostile power supply. Run OLTP bursts and crash the
   machine adversarially (random un-fenced cache lines persist, others
   don't) over and over; after every restart, check the database's
   invariants and that exactly the committed transactions survived.

     dune exec examples/crash_torture.exe -- [rounds]   (default 10) *)

module Engine = Core.Engine
module Region = Nvm.Region
module Tpcc = Workload.Tpcc_lite
module Prng = Util.Prng

let () =
  let rounds =
    if Array.length Sys.argv > 1 then int_of_string Sys.argv.(1) else 10
  in
  let rng = Prng.create 666L in
  let engine =
    ref (Engine.create (Engine.default_config ~size:(64 * 1024 * 1024) Engine.Nvm))
  in
  let shape = (2, 3, 8) in
  let w, d, c = shape in
  let sess = ref (Tpcc.setup !engine ~warehouses:w ~districts_per_wh:d ~customers_per_district:c) in
  let total_committed = ref 0 in
  for round = 1 to rounds do
    let burst = 50 + Prng.int rng 200 in
    let stats = Tpcc.run !sess (Prng.split rng) ~ops:burst () in
    total_committed := !total_committed + stats.Tpcc.committed;
    (* leave some transactions in flight when the power dies *)
    let in_flight = Prng.int rng 3 in
    for _ = 1 to in_flight do
      let txn = Engine.begin_txn !engine in
      ignore
        (Engine.insert !engine txn "order_line"
           [| Storage.Value.Int (-round); Storage.Value.Int 0;
              Storage.Value.Text "doomed"; Storage.Value.Int 0 |])
    done;
    let orders_before = Tpcc.total_orders !sess in
    let crashed = Engine.crash !engine (Region.Adversarial (Prng.split rng)) in
    let e2, rstats = Engine.recover crashed in
    engine := e2;
    sess := Tpcc.attach e2 ~warehouses:w ~districts_per_wh:d ~customers_per_district:c;
    let orders_after = Tpcc.total_orders !sess in
    let checks = Tpcc.consistency_check !sess in
    let all_ok = List.for_all snd checks in
    let rolled =
      match rstats.Engine.detail with
      | Engine.Rv_nvm { rolled_back_rows; _ } -> rolled_back_rows
      | _ -> 0
    in
    Printf.printf
      "round %2d: %3d committed, %d in-flight at crash -> recovered in %8s, %2d rows rolled back, orders %d=%d, invariants %s\n%!"
      round stats.Tpcc.committed in_flight
      (Util.Tabular.fmt_ns rstats.Engine.wall_ns)
      rolled orders_before orders_after
      (if all_ok then "OK" else "VIOLATED");
    if orders_before <> orders_after then failwith "committed orders lost!";
    if not all_ok then failwith "invariant violated!"
  done;
  Printf.printf
    "survived %d adversarial crashes; %d transactions committed in total\n"
    rounds !total_committed
