examples/analytics.mli:
