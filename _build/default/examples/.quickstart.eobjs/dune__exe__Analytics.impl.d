examples/analytics.ml: Array Core List Printf Query Storage Util Workload
