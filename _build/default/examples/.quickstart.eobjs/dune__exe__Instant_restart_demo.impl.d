examples/instant_restart_demo.ml: Array Core Filename Int64 Nvm Printf Sys Unix Util Wal Workload
