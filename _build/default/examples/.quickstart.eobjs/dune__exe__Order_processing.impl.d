examples/order_processing.ml: Core List Nvm Printf Storage Unix Util Workload
