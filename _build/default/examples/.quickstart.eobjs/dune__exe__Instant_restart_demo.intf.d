examples/instant_restart_demo.mli:
