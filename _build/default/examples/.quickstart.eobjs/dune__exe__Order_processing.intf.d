examples/order_processing.mli:
