examples/crash_torture.ml: Array Core List Nvm Printf Storage Sys Util Workload
