examples/quickstart.ml: Core List Nvm Printf Storage Util
