examples/quickstart.mli:
